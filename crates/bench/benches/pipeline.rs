//! End-to-end pipeline bench over a datagen world at worker counts
//! 1/2/4/8, in two parts:
//!
//! 1. An instrumented sweep: each worker count runs the full pipeline
//!    through a traced [`minoaner_core::ResolveRequest`] `MINOANER_REPS`
//!    times and the resulting [`RunTrace`]s are condensed into
//!    `BENCH_pipeline.json` (schema in `minoaner_bench`). The widest
//!    worker count is then re-run under the pre-rewrite
//!    [`StealSchedule::SharedClaim`] scheduling so the report records
//!    what work stealing buys on the skewed profile. The binary re-reads
//!    and validates what it wrote and exits nonzero on any schema
//!    violation — CI's gate.
//! 2. A criterion group (`pipeline/resolve`) over the same worker counts
//!    for statistically rigorous timings; criterion CLI flags (`--quick`,
//!    filters, baselines) pass through.
//!
//! Env knobs: `MINOANER_SCALE` (dataset size, default 1.0),
//! `MINOANER_REPS` (sweep repetitions, default 3), `MINOANER_BENCH_OUT`
//! (report path, default `BENCH_pipeline.json`).

use criterion::Criterion;
use minoaner_bench::{BenchPoint, PipelineReport, BENCH_SCHEMA_VERSION};
use minoaner_core::{Minoaner, ResolveRequest, RuleSet};
use minoaner_dataflow::{Executor, StealSchedule, TRACE_SCHEMA_VERSION};
use minoaner_datagen::{profiles, GeneratedDataset};
use minoaner_eval::{dataset_at_scale, scale_from_env};
use std::hint::black_box;
use std::process::ExitCode;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs one traced resolution on `exec` and returns the wall time in
/// milliseconds plus the outcome.
fn traced_run(
    minoaner: &Minoaner,
    exec: &mut Executor,
    dataset: &GeneratedDataset,
) -> (minoaner_core::Resolution, minoaner_dataflow::RunTrace) {
    let (res, trace) = minoaner
        .run_on(exec, ResolveRequest::pair(&dataset.pair).rules(RuleSet::FULL).trace())
        .expect("pipeline bench run failed")
        .into_traced();
    trace.validate().expect("run trace failed validation");
    (res, trace)
}

fn sweep(dataset: &GeneratedDataset, scale: f64, reps: usize) -> PipelineReport {
    let minoaner = Minoaner::new();
    let mut points: Vec<BenchPoint> = Vec::new();
    let mut baseline_mean_ms = 0.0f64;

    for workers in WORKER_COUNTS {
        let mut exec = Executor::new(workers);
        let mut wall_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let (res, trace) = traced_run(&minoaner, &mut exec, dataset);
            wall_ms.push(trace.total_wall.as_secs_f64() * 1000.0);
            last = Some((res, trace));
        }
        let (res, trace) = last.expect("reps ≥ 1");
        let mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
        let min = wall_ms.iter().cloned().fold(f64::INFINITY, f64::min);
        if workers == WORKER_COUNTS[0] {
            baseline_mean_ms = mean;
        }
        points.push(BenchPoint {
            workers,
            partitions: exec.partitions(),
            wall_ms_mean: mean,
            wall_ms_min: min,
            speedup: baseline_mean_ms / mean,
            matches: res.matches.len() as u64,
            comparisons_after_purge: trace.counter("blocking/comparisons_after_purge"),
            shuffle_bytes: trace.stages.iter().map(|s| s.io.shuffle_bytes).sum(),
        });
        eprintln!(
            "pipeline sweep: {workers} workers → {mean:.1} ms mean ({} matches)",
            res.matches.len()
        );
    }

    // Pre-PR pool baseline: the widest worker count again, but with the
    // shared-claim scheduling the pool used before work stealing.
    let max_workers = WORKER_COUNTS[WORKER_COUNTS.len() - 1];
    let mut shared = Executor::new(max_workers);
    shared.set_steal_schedule(StealSchedule::SharedClaim);
    let mut shared_ms: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (_, trace) = traced_run(&minoaner, &mut shared, dataset);
        shared_ms.push(trace.total_wall.as_secs_f64() * 1000.0);
    }
    let shared_claim_wall_ms_mean = shared_ms.iter().sum::<f64>() / shared_ms.len() as f64;
    let steal_mean = points[points.len() - 1].wall_ms_mean;
    eprintln!(
        "pipeline sweep: {max_workers} workers shared-claim → {shared_claim_wall_ms_mean:.1} ms \
         mean ({:.2}x vs work stealing)",
        shared_claim_wall_ms_mean / steal_mean
    );

    PipelineReport {
        schema_version: BENCH_SCHEMA_VERSION,
        trace_schema_version: TRACE_SCHEMA_VERSION,
        dataset: dataset.profile.name.clone(),
        scale,
        reps,
        shared_claim_wall_ms_mean,
        steal_speedup: shared_claim_wall_ms_mean / steal_mean,
        points,
    }
}

fn criterion_sweep(dataset: &GeneratedDataset) {
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("pipeline/resolve");
    group.sample_size(10);
    let minoaner = Minoaner::new();
    for workers in WORKER_COUNTS {
        let mut exec = Executor::new(workers);
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| {
                black_box(
                    minoaner
                        .run_on(&mut exec, ResolveRequest::pair(&dataset.pair))
                        .expect("resolve")
                        .into_resolution(),
                )
            })
        });
    }
    group.finish();
    c.final_summary();
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let reps: usize =
        std::env::var("MINOANER_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let out_path =
        std::env::var("MINOANER_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());

    // The skewed profile: Rexa-DBLP's size imbalance is what makes
    // partition runtimes uneven — the case work stealing exists for.
    let dataset = dataset_at_scale(&profiles::rexa_dblp(), scale);
    let report = sweep(&dataset, scale, reps);
    let json = report.to_json().expect("cannot serialize bench report");
    std::fs::write(&out_path, json).expect("cannot write bench report");
    eprintln!("wrote {out_path} ({} points)", report.points.len());

    // Validate what actually landed on disk, not the in-memory value:
    // this is the schema gate CI relies on.
    let on_disk = std::fs::read_to_string(&out_path).expect("cannot re-read bench report");
    let parsed = match PipelineReport::from_json(&on_disk) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {out_path} is not valid report JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("error: {out_path} failed schema validation: {e}");
        return ExitCode::FAILURE;
    }

    criterion_sweep(&dataset);
    ExitCode::SUCCESS
}
