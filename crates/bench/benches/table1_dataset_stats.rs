//! Regenerates **Table 1** of the paper: dataset statistics for the four
//! benchmark analogues. Run with `cargo bench --bench table1_dataset_stats`;
//! set `MINOANER_SCALE` to shrink or grow the datasets.

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_eval::scale_from_env;
use minoaner_eval::tables::table1;

fn main() {
    let scale = scale_from_env();
    let start = std::time::Instant::now();
    let (_rows, table) = table1(scale);
    println!("{}", table.render());
    println!("(generated + measured in {:?})", start.elapsed());
}
