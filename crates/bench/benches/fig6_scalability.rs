//! Regenerates **Figure 6** of the paper: end-to-end running time and
//! speedup of MinoanER as the number of dataflow workers grows (the paper
//! sweeps 1 → 72 cores on its Spark cluster; this sweeps 1 → the local
//! machine's cores with the paper's 3-tasks-per-core convention), plus the
//! matching phase's share of total runtime (§6.2).

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_eval::figures::fig6;
use minoaner_eval::scale_from_env;

fn main() {
    let scale = scale_from_env();
    let reps: usize =
        std::env::var("MINOANER_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let start = std::time::Instant::now();
    let (_points, rendered) = fig6(scale, reps);
    println!("{rendered}");
    println!("(worker sweep x 4 datasets, {reps} repetitions each, in {:?})", start.elapsed());
}
