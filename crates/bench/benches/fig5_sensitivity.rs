//! Regenerates **Figure 5** of the paper: the F1 sensitivity of MinoanER
//! to its four parameters — k (name attributes), K (candidates per
//! entity), N (relations per entity) and θ (rank-aggregation trade-off) —
//! each swept around the global default configuration (2, 15, 3, 0.6).

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_dataflow::Executor;
use minoaner_eval::figures::fig5;
use minoaner_eval::scale_from_env;

fn main() {
    let scale = scale_from_env();
    let exec = Executor::default();
    let start = std::time::Instant::now();
    let (_points, rendered) = fig5(&exec, scale);
    println!("{rendered}");
    println!("(21 configurations x 4 datasets in {:?})", start.elapsed());
}
