//! Blocking-graph kernel bench (Algorithm 1) over a datagen world at
//! worker counts 1/2/4/8, in two parts:
//!
//! 1. An instrumented sweep: blocking inputs (purged token blocks, name
//!    blocks, relation stats) are prepared once, then each worker count
//!    runs `build_blocking_graph` `MINOANER_REPS` times under a
//!    [`TraceCollector`]; the per-run [`RunTrace`]s are condensed into
//!    `BENCH_graph.json` (schema in `minoaner_bench`), including the wall
//!    of the `graph/gamma*` and `graph/beta/*` stages and the graph's
//!    weight digest per point. The pre-rewrite sequential kernel
//!    (`minoaner_blocking::reference`, compiled via the `reference-impl`
//!    feature) is timed on the same inputs for the speedup-vs-reference
//!    column. The binary re-reads and validates what it wrote — the
//!    validation rejects digest or candidate-count drift across worker
//!    counts, so a passing run is itself determinism evidence — and exits
//!    nonzero on any violation (CI's gate).
//! 2. A criterion group (`graph/build`) over the same worker counts, plus
//!    `graph/build_reference` for the old kernel.
//!
//! Env knobs: `MINOANER_SCALE` (dataset size, default 1.0),
//! `MINOANER_REPS` (sweep repetitions, default 3), `MINOANER_BENCH_OUT`
//! (report path, default `BENCH_graph.json`).

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use criterion::Criterion;
use minoaner_bench::{GraphBenchPoint, GraphReport, GRAPH_BENCH_SCHEMA_VERSION};
use minoaner_blocking::graph::{build_blocking_graph, BlockingGraph, GraphConfig};
use minoaner_blocking::name::build_name_blocks;
use minoaner_blocking::purge::purge_blocks;
use minoaner_blocking::reference::build_blocking_graph_reference;
use minoaner_blocking::token::build_token_blocks;
use minoaner_blocking::{NameBlocks, TokenBlocks};
use minoaner_core::Minoaner;
use minoaner_dataflow::{Executor, RunTrace, TraceCollector, TRACE_SCHEMA_VERSION};
use minoaner_datagen::profiles;
use minoaner_eval::{dataset_at_scale, scale_from_env};
use minoaner_kb::stats::{NameStats, RelationStats};
use minoaner_kb::{KbPair, Side};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Everything Algorithm 1 consumes, prepared once and shared by every
/// point of the sweep (the bench isolates the graph kernel, not blocking).
struct GraphInputs {
    pair: KbPair,
    rels: RelationStats,
    token_blocks: TokenBlocks,
    name_blocks: NameBlocks,
    cfg: GraphConfig,
}

fn prepare_inputs(pair: KbPair) -> GraphInputs {
    let config = *Minoaner::new().config();
    let rels = RelationStats::compute(&pair);
    let name_stats = NameStats::compute(&pair, config.name_attrs_k);
    let mut token_blocks = build_token_blocks(&pair);
    let total_entities = pair.kb(Side::Left).len() + pair.kb(Side::Right).len();
    purge_blocks(&mut token_blocks, total_entities);
    let name_blocks = build_name_blocks(&pair, &name_stats);
    let cfg = GraphConfig {
        top_k: config.top_k,
        n_relations: config.n_relations,
        ..GraphConfig::default()
    };
    GraphInputs { pair, rels, token_blocks, name_blocks, cfg }
}

fn build(inputs: &GraphInputs, exec: &Executor) -> BlockingGraph {
    build_blocking_graph(
        exec,
        &inputs.pair,
        &inputs.rels,
        &inputs.token_blocks,
        &inputs.name_blocks,
        &inputs.cfg,
    )
}

fn candidate_totals(inputs: &GraphInputs, graph: &BlockingGraph) -> (u64, u64) {
    let (mut value, mut neighbor) = (0u64, 0u64);
    for side in [Side::Left, Side::Right] {
        for (e, _) in inputs.pair.kb(side).iter() {
            value += graph.value_candidates(side, e).len() as u64;
            neighbor += graph.neighbor_candidates(side, e).len() as u64;
        }
    }
    (value, neighbor)
}

fn sweep(inputs: &GraphInputs, scale: f64, reps: usize) -> GraphReport {
    // Pre-rewrite sequential kernel on the identical inputs: the speedup
    // baseline, and a bit-equality cross-check against the new kernel.
    let mut reference_wall_ms: Vec<f64> = Vec::with_capacity(reps);
    let mut reference_digest = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let g = build_blocking_graph_reference(
            &inputs.pair,
            &inputs.rels,
            &inputs.token_blocks,
            &inputs.name_blocks,
            &inputs.cfg,
        );
        reference_wall_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        reference_digest = g.weight_digest();
    }
    let reference_wall_ms_mean =
        reference_wall_ms.iter().sum::<f64>() / reference_wall_ms.len() as f64;

    let mut points: Vec<GraphBenchPoint> = Vec::new();
    let mut baseline_mean_ms = 0.0f64;
    for workers in WORKER_COUNTS {
        let mut exec = Executor::new(workers);
        let mut wall_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut gamma_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut beta_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            exec.reset_metrics();
            let collector = TraceCollector::new();
            exec.set_observer(collector.clone());
            let t0 = Instant::now();
            let graph = build(inputs, &exec);
            let total = t0.elapsed();
            exec.clear_observer();
            let trace = RunTrace::capture(
                exec.workers(),
                exec.partitions(),
                total,
                &exec.stage_log(),
                collector.counters(),
            );
            trace.validate().expect("graph bench trace failed validation");
            wall_ms.push(total.as_secs_f64() * 1000.0);
            gamma_ms.push(trace.stage_wall_prefix("graph/gamma").as_secs_f64() * 1000.0);
            beta_ms.push(trace.stage_wall_prefix("graph/beta").as_secs_f64() * 1000.0);
            last = Some(graph);
        }
        let graph = last.expect("reps ≥ 1");
        let digest = graph.weight_digest();
        assert_eq!(
            digest, reference_digest,
            "new kernel diverged from the reference kernel at {workers} workers"
        );
        let (value_candidates, neighbor_candidates) = candidate_totals(inputs, &graph);
        let mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
        let min = wall_ms.iter().cloned().fold(f64::INFINITY, f64::min);
        if workers == WORKER_COUNTS[0] {
            baseline_mean_ms = mean;
        }
        points.push(GraphBenchPoint {
            workers,
            partitions: exec.partitions(),
            wall_ms_mean: mean,
            wall_ms_min: min,
            speedup: baseline_mean_ms / mean,
            gamma_wall_ms: gamma_ms.iter().sum::<f64>() / gamma_ms.len() as f64,
            beta_wall_ms: beta_ms.iter().sum::<f64>() / beta_ms.len() as f64,
            value_candidates,
            neighbor_candidates,
            weight_digest: digest,
        });
        let p = points.last().expect("just pushed");
        eprintln!(
            "graph sweep: {workers} workers → {mean:.1} ms mean (γ {:.1} ms, β {:.1} ms)",
            p.gamma_wall_ms, p.beta_wall_ms
        );
    }

    GraphReport {
        schema_version: GRAPH_BENCH_SCHEMA_VERSION,
        trace_schema_version: TRACE_SCHEMA_VERSION,
        dataset: "restaurant".into(),
        scale,
        reps,
        reference_wall_ms_mean,
        speedup_vs_reference: reference_wall_ms_mean / points[0].wall_ms_mean,
        points,
    }
}

fn criterion_sweep(inputs: &GraphInputs) {
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("graph/build");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let exec = Executor::new(workers);
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| black_box(build(inputs, &exec)))
        });
    }
    group.bench_function("reference", |b| {
        b.iter(|| {
            black_box(build_blocking_graph_reference(
                &inputs.pair,
                &inputs.rels,
                &inputs.token_blocks,
                &inputs.name_blocks,
                &inputs.cfg,
            ))
        })
    });
    group.finish();
    c.final_summary();
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let reps: usize =
        std::env::var("MINOANER_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let out_path =
        std::env::var("MINOANER_BENCH_OUT").unwrap_or_else(|_| "BENCH_graph.json".into());

    let dataset = dataset_at_scale(&profiles::restaurant(), scale);
    let inputs = prepare_inputs(dataset.pair);
    let report = sweep(&inputs, scale, reps);
    let json = report.to_json().expect("cannot serialize bench report");
    std::fs::write(&out_path, json).expect("cannot write bench report");
    eprintln!(
        "wrote {out_path} ({} points, {:.2}× vs reference kernel)",
        report.points.len(),
        report.speedup_vs_reference
    );

    // Validate what actually landed on disk, not the in-memory value:
    // this is the schema/determinism gate CI relies on.
    let on_disk = std::fs::read_to_string(&out_path).expect("cannot re-read bench report");
    let parsed = match GraphReport::from_json(&on_disk) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {out_path} is not valid report JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("error: {out_path} failed schema validation: {e}");
        return ExitCode::FAILURE;
    }

    criterion_sweep(&inputs);
    ExitCode::SUCCESS
}
