//! Regenerates **Table 2** of the paper: block statistics — |B_N|, |B_T|,
//! aggregate comparisons, the brute-force cross product, and the
//! precision / recall / F1 of blocking.

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_eval::scale_from_env;
use minoaner_eval::tables::table2;

fn main() {
    let scale = scale_from_env();
    let start = std::time::Instant::now();
    let (_rows, table) = table2(scale);
    println!("{}", table.render());
    println!("(blocked + scored in {:?})", start.elapsed());
}
