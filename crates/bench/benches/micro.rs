//! Criterion micro-benchmarks for the hot paths: value-similarity kernel,
//! token blocking, blocking-graph construction, and the full matching
//! phase (Algorithm 2) on a prepared graph.

use criterion::{criterion_group, criterion_main, Criterion};
use minoaner_core::{Minoaner, RuleSet};
use minoaner_dataflow::Executor;
use minoaner_datagen::{generate, profiles};
use minoaner_kb::stats::{value_sim, TokenEf};
use std::hint::black_box;

fn bench_value_sim(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let ef = TokenEf::compute(&d.pair);
    let pairs = d.ground_truth.to_vec();
    c.bench_function("value_sim/restaurant_gt", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(l, r) in &pairs {
                acc += value_sim(black_box(&d.pair), &ef, l, r);
            }
            black_box(acc)
        })
    });
}

fn bench_token_blocking(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    c.bench_function("token_blocking/restaurant", |b| {
        b.iter(|| black_box(minoaner_blocking::token::build_token_blocks(&d.pair)))
    });
}

fn bench_graph_construction(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let exec = Executor::default();
    let m = Minoaner::new();
    c.bench_function("blocking_graph/restaurant", |b| {
        b.iter(|| black_box(m.prepare(&exec, &d.pair)))
    });
}

fn bench_matching(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let exec = Executor::default();
    let m = Minoaner::new();
    let prepared = m.prepare(&exec, &d.pair);
    c.bench_function("matching_rules/restaurant", |b| {
        b.iter(|| black_box(m.match_prepared(&exec, &d.pair, &prepared, RuleSet::FULL)))
    });
}

criterion_group!(benches, bench_value_sim, bench_token_blocking, bench_graph_construction, bench_matching);
criterion_main!(benches);
