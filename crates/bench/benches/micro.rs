//! Criterion micro-benchmarks for the hot paths: tokenization and the
//! N-Triples parser path it feeds, value-similarity kernel, token
//! blocking, blocking-graph construction, and the full matching phase
//! (Algorithm 2) on a prepared graph.

use criterion::{criterion_group, criterion_main, Criterion};
use minoaner_core::{Minoaner, RuleSet};
use minoaner_dataflow::Executor;
use minoaner_datagen::{generate, profiles};
use minoaner_kb::parser::{load_ntriples, write_ntriples};
use minoaner_kb::stats::{value_sim, TokenEf};
use minoaner_kb::tokenize::tokenize;
use minoaner_kb::{KbPairBuilder, Side, Term};
use std::hint::black_box;

fn bench_tokenize(c: &mut Criterion) {
    // A realistic literal mix: mostly-lowercase values (the zero-copy
    // path) plus cased and punctuated ones that must case-fold.
    let d = generate(&profiles::restaurant());
    let doc = write_ntriples(&d.pair, Side::Left);
    c.bench_function("tokenize/ntriples_doc", |b| {
        b.iter(|| {
            let mut count = 0usize;
            let mut bytes = 0usize;
            for line in doc.lines() {
                for tok in tokenize(black_box(line)) {
                    count += 1;
                    bytes += tok.len();
                }
            }
            black_box((count, bytes))
        })
    });
}

fn bench_parser_path(c: &mut Criterion) {
    // End-to-end parser path: every parsed literal runs through
    // normalize_name + tokenize during interning.
    let d = generate(&profiles::restaurant());
    let doc = write_ntriples(&d.pair, Side::Left);
    c.bench_function("parser/load_ntriples", |b| {
        b.iter(|| {
            let mut builder = KbPairBuilder::new();
            let n = load_ntriples(&mut builder, Side::Left, black_box(&doc)).expect("parses");
            builder.add_triple(Side::Right, "r", "p", Term::Literal("x"));
            black_box((n, builder.finish()))
        })
    });
}

fn bench_value_sim(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let ef = TokenEf::compute(&d.pair);
    let pairs = d.ground_truth.to_vec();
    c.bench_function("value_sim/restaurant_gt", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(l, r) in &pairs {
                acc += value_sim(black_box(&d.pair), &ef, l, r);
            }
            black_box(acc)
        })
    });
}

fn bench_token_blocking(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    c.bench_function("token_blocking/restaurant", |b| {
        b.iter(|| black_box(minoaner_blocking::token::build_token_blocks(&d.pair)))
    });
}

fn bench_graph_construction(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let exec = Executor::default();
    let m = Minoaner::new();
    c.bench_function("blocking_graph/restaurant", |b| {
        b.iter(|| black_box(m.prepare(&exec, &d.pair)))
    });
}

fn bench_matching(c: &mut Criterion) {
    let d = generate(&profiles::restaurant());
    let exec = Executor::default();
    let m = Minoaner::new();
    let prepared = m.prepare(&exec, &d.pair);
    c.bench_function("matching_rules/restaurant", |b| {
        b.iter(|| black_box(m.match_prepared(&exec, &d.pair, &prepared, RuleSet::FULL)))
    });
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_parser_path,
    bench_value_sim,
    bench_token_blocking,
    bench_graph_construction,
    bench_matching
);
criterion_main!(benches);
