//! Design-choice ablations beyond the paper's Table 4 (see DESIGN.md §3,
//! experiment E8+): β weighting schemes, pruning strategies, Block
//! Purging criteria, the conclusion's rule ensemble, and LSH vs token
//! blocking candidate recall.

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_dataflow::Executor;
use minoaner_eval::ablation::{
    beta_weighting_ablation, ensemble_ablation, extras_ablation, lsh_ablation, pruning_ablation,
    purging_ablation, render,
};
use minoaner_eval::scale_from_env;
use minoaner_eval::variance::seed_variance;

fn main() {
    let scale = (scale_from_env() * 0.5).min(1.0); // ablations sweep many variants
    let exec = Executor::default();
    let start = std::time::Instant::now();
    let mut rows = Vec::new();
    rows.extend(beta_weighting_ablation(&exec, scale));
    rows.extend(pruning_ablation(&exec, scale));
    rows.extend(purging_ablation(&exec, scale));
    rows.extend(extras_ablation(&exec, scale));
    rows.extend(ensemble_ablation(&exec, scale));
    println!("{}", render(&rows, "F1"));
    let lsh = lsh_ablation(scale);
    println!("{}", render(&lsh, "candidate recall"));

    // Repeatability: the headline workflow across three generator seeds.
    let (_, variance_table) = seed_variance(
        &exec,
        &minoaner_datagen::profiles::all_profiles(),
        scale,
        &[0x5EED_0001, 0xD1CE, 0xFEED],
    );
    println!("{}", variance_table.render());
    println!("(all ablations at scale {scale} in {:?})", start.elapsed());
}
