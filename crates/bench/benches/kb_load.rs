//! KB load-path bench: text parse vs `.mkb` compile, mmap open and
//! first-touch materialization, in two parts:
//!
//! 1. An instrumented sweep: a datagen world is rendered to N-Triples
//!    once, then each operation is timed `MINOANER_REPS` times — parsing
//!    both docs into a `KbPair`, one `write_mkb` compile, `MkbFile::open`
//!    (header + section-table validation only), and `verify` + `to_pair`
//!    (checksum and materialize everything `open` deferred). The numbers
//!    land in `BENCH_kb.json` (schema in `minoaner_bench`); the binary
//!    re-reads and validates what it wrote and exits nonzero on any
//!    violation — including `open` being less than 100× faster than the
//!    parse, the container's headline claim (CI's gate).
//! 2. A criterion group (`kb/load`) over the same operations.
//!
//! Env knobs: `MINOANER_SCALE` (dataset size, default 1.0),
//! `MINOANER_REPS` (sweep repetitions, default 5), `MINOANER_BENCH_OUT`
//! (report path, default `BENCH_kb.json`).

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use criterion::Criterion;
use minoaner_bench::{KbLoadReport, KB_BENCH_SCHEMA_VERSION};
use minoaner_datagen::profiles;
use minoaner_eval::{dataset_at_scale, scale_from_env};
use minoaner_kb::parser::{load_ntriples, write_ntriples};
use minoaner_kb::{KbPair, KbPairBuilder, MkbFile, Side};
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The rendered inputs every timed operation consumes: the two N-Triples
/// docs and the compiled container path.
struct LoadInputs {
    left_doc: String,
    right_doc: String,
    mkb_path: PathBuf,
}

fn parse_pair(inputs: &LoadInputs) -> KbPair {
    let mut b = KbPairBuilder::new();
    load_ntriples(&mut b, Side::Left, &inputs.left_doc).expect("own output parses");
    load_ntriples(&mut b, Side::Right, &inputs.right_doc).expect("own output parses");
    b.finish()
}

fn mean_ms(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn time_reps(reps: usize, mut op: impl FnMut()) -> f64 {
    let mut ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        op();
        ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    mean_ms(&ms)
}

fn sweep(inputs: &LoadInputs, scale: f64, reps: usize) -> KbLoadReport {
    let parse_ms_mean = time_reps(reps, || {
        black_box(parse_pair(inputs));
    });
    let reference = parse_pair(inputs);

    let t0 = Instant::now();
    let mkb_bytes =
        minoaner_kb::write_mkb(&reference, &inputs.mkb_path).expect("compile succeeds");
    let compile_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let open_ms_mean = time_reps(reps, || {
        black_box(MkbFile::open(&inputs.mkb_path).expect("open succeeds"));
    });
    let page_in_ms_mean = time_reps(reps, || {
        let file = MkbFile::open(&inputs.mkb_path).expect("open succeeds");
        black_box(file.to_pair().expect("materialize succeeds"));
    });

    // The materialized pair must be the parsed pair, not an approximation
    // of it — the same gate the round-trip tests enforce, kept here so a
    // fast-but-wrong load path can never produce a passing report.
    let mapped = MkbFile::open(&inputs.mkb_path)
        .and_then(|f| f.to_pair())
        .expect("materialize succeeds");
    for side in [Side::Left, Side::Right] {
        assert_eq!(mapped.kb(side).len(), reference.kb(side).len(), "{side:?} entity count");
        assert_eq!(
            mapped.kb(side).triple_count(),
            reference.kb(side).triple_count(),
            "{side:?} triple count"
        );
    }
    assert_eq!(mapped.token_space(), reference.token_space(), "token space");

    let entities =
        (reference.kb(Side::Left).len() + reference.kb(Side::Right).len()) as u64;
    eprintln!(
        "kb load sweep: parse {parse_ms_mean:.2} ms, compile {compile_ms:.2} ms, \
         open {open_ms_mean:.4} ms, page-in {page_in_ms_mean:.2} ms \
         ({:.0}× open speedup)",
        parse_ms_mean / open_ms_mean
    );

    KbLoadReport {
        schema_version: KB_BENCH_SCHEMA_VERSION,
        dataset: "restaurant".into(),
        scale,
        reps,
        mkb_bytes,
        entities,
        parse_ms_mean,
        compile_ms,
        open_ms_mean,
        page_in_ms_mean,
        open_speedup_vs_parse: parse_ms_mean / open_ms_mean,
    }
}

fn criterion_sweep(inputs: &LoadInputs) {
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("kb/load");
    group.sample_size(10);
    group.bench_function("parse", |b| b.iter(|| black_box(parse_pair(inputs))));
    group.bench_function("open", |b| {
        b.iter(|| black_box(MkbFile::open(&inputs.mkb_path).expect("open succeeds")))
    });
    group.bench_function("page_in", |b| {
        b.iter(|| {
            let file = MkbFile::open(&inputs.mkb_path).expect("open succeeds");
            black_box(file.to_pair().expect("materialize succeeds"))
        })
    });
    group.finish();
    c.final_summary();
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let reps: usize =
        std::env::var("MINOANER_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);
    let out_path =
        std::env::var("MINOANER_BENCH_OUT").unwrap_or_else(|_| "BENCH_kb.json".into());

    let dataset = dataset_at_scale(&profiles::restaurant(), scale);
    let work_dir = std::env::temp_dir().join(format!("minoaner-kb-bench-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("cannot create bench work dir");
    let inputs = LoadInputs {
        left_doc: write_ntriples(&dataset.pair, Side::Left),
        right_doc: write_ntriples(&dataset.pair, Side::Right),
        mkb_path: work_dir.join("pair.mkb"),
    };

    let report = sweep(&inputs, scale, reps);
    let json = report.to_json().expect("cannot serialize bench report");
    std::fs::write(&out_path, json).expect("cannot write bench report");
    eprintln!(
        "wrote {out_path} ({:.0}× open speedup, {} byte container)",
        report.open_speedup_vs_parse, report.mkb_bytes
    );

    // Validate what actually landed on disk, not the in-memory value:
    // this is the schema/speedup gate CI relies on.
    let on_disk = std::fs::read_to_string(&out_path).expect("cannot re-read bench report");
    let parsed = match KbLoadReport::from_json(&on_disk) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {out_path} is not valid report JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("error: {out_path} failed schema validation: {e}");
        let _ = std::fs::remove_dir_all(&work_dir);
        return ExitCode::FAILURE;
    }

    criterion_sweep(&inputs);
    let _ = std::fs::remove_dir_all(&work_dir);
    ExitCode::SUCCESS
}
