//! Regenerates **Table 4** of the paper: each matching rule executed
//! alone (R1, R2, R3), the workflow without the reciprocity filter (¬R4),
//! and the workflow without neighbor evidence (No Neighbors), with the
//! paper's numbers alongside.

// Benchmarks measure wall-clock by definition; the deny wall
// (clippy::disallowed_methods) applies to library targets.
#![allow(clippy::disallowed_methods)]

use minoaner_dataflow::Executor;
use minoaner_eval::scale_from_env;
use minoaner_eval::tables::table4;

fn main() {
    let scale = scale_from_env();
    let exec = Executor::default();
    let start = std::time::Instant::now();
    let (_rows, table) = table4(&exec, scale);
    println!("{}", table.render());
    println!("(all ablations in {:?})", start.elapsed());
}
