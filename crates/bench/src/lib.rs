//! # minoaner-bench
//!
//! Shared support for the benchmark targets in `benches/`: the versioned
//! schema of `BENCH_pipeline.json`, the machine-readable output of the
//! `pipeline` bench (a worker-count sweep of the full resolution pipeline
//! instrumented through [`minoaner_dataflow::RunTrace`]).
//!
//! The schema is validated both by the bench binary itself (it re-reads
//! and checks what it wrote, exiting nonzero on failure — the hook CI
//! uses) and by the tests here.

use serde::{Deserialize, Serialize};

/// Version of the `BENCH_pipeline.json` schema. Bump on breaking changes
/// to [`PipelineReport`].
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// One worker count of the pipeline sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchPoint {
    /// Dataflow workers used for this point.
    pub workers: usize,
    /// Partitions the executor derived from the worker count.
    pub partitions: usize,
    /// Mean end-to-end wall time over the repetitions, milliseconds.
    pub wall_ms_mean: f64,
    /// Fastest repetition, milliseconds.
    pub wall_ms_min: f64,
    /// Speedup vs the 1-worker mean (first point ≡ 1.0).
    pub speedup: f64,
    /// Matches found (identical across worker counts by construction).
    pub matches: u64,
    /// `blocking/comparisons_after_purge` from the run trace.
    pub comparisons_after_purge: u64,
    /// Total shuffle volume from the run trace, bytes.
    pub shuffle_bytes: u64,
}

/// The top-level contents of `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// [`BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// [`minoaner_dataflow::TRACE_SCHEMA_VERSION`] of the traces the
    /// points were extracted from.
    pub trace_schema_version: u32,
    /// Datagen profile name.
    pub dataset: String,
    /// `MINOANER_SCALE` the dataset was generated at.
    pub scale: f64,
    /// Repetitions per worker count.
    pub reps: usize,
    /// Mean wall of the widest worker count re-run under
    /// [`minoaner_dataflow::StealSchedule::SharedClaim`] — the pool's
    /// scheduling before work stealing — milliseconds, same repetitions.
    pub shared_claim_wall_ms_mean: f64,
    /// `shared_claim_wall_ms_mean / points.last().wall_ms_mean` — what
    /// work stealing buys at the widest worker count.
    pub steal_speedup: f64,
    /// One point per worker count, ascending.
    pub points: Vec<BenchPoint>,
}

impl PipelineReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report previously produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Checks the report against the schema invariants, returning the
    /// first violation. This is the gate the bench binary (and CI) runs
    /// after writing `BENCH_pipeline.json`.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} does not match supported version {BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.trace_schema_version != minoaner_dataflow::TRACE_SCHEMA_VERSION {
            return Err(format!(
                "trace_schema_version {} does not match supported version {}",
                self.trace_schema_version,
                minoaner_dataflow::TRACE_SCHEMA_VERSION
            ));
        }
        if self.dataset.is_empty() {
            return Err("dataset name is empty".into());
        }
        if !(self.scale > 0.0) {
            return Err(format!("scale must be positive, got {}", self.scale));
        }
        if self.reps == 0 {
            return Err("reps must be ≥ 1".into());
        }
        if self.points.is_empty() {
            return Err("no bench points recorded".into());
        }
        let mut prev_workers = 0usize;
        for (i, p) in self.points.iter().enumerate() {
            if p.workers <= prev_workers {
                return Err(format!(
                    "point {i}: worker counts must be positive and strictly ascending \
                     ({prev_workers} then {})",
                    p.workers
                ));
            }
            prev_workers = p.workers;
            if p.partitions < p.workers {
                return Err(format!(
                    "point {i}: {} partitions cannot be fewer than {} workers",
                    p.partitions, p.workers
                ));
            }
            if !(p.wall_ms_mean > 0.0) || !(p.wall_ms_min > 0.0) {
                return Err(format!("point {i}: wall times must be positive"));
            }
            if p.wall_ms_min > p.wall_ms_mean {
                return Err(format!(
                    "point {i}: min wall time {} exceeds mean {}",
                    p.wall_ms_min, p.wall_ms_mean
                ));
            }
            if !(p.speedup > 0.0) {
                return Err(format!("point {i}: speedup must be positive, got {}", p.speedup));
            }
        }
        if (self.points[0].speedup - 1.0).abs() > 1e-9 {
            return Err(format!(
                "first point is the speedup baseline and must be 1.0, got {}",
                self.points[0].speedup
            ));
        }
        let matches = self.points[0].matches;
        if self.points.iter().any(|p| p.matches != matches) {
            return Err("match counts differ across worker counts (nondeterminism)".into());
        }
        if !(self.shared_claim_wall_ms_mean > 0.0) {
            return Err("shared-claim baseline wall time must be positive".into());
        }
        let last_mean = self.points[self.points.len() - 1].wall_ms_mean;
        let expected = self.shared_claim_wall_ms_mean / last_mean;
        if !(self.steal_speedup > 0.0)
            || (self.steal_speedup - expected).abs() > 1e-6 * expected.max(1.0)
        {
            return Err(format!(
                "steal_speedup {} inconsistent with shared-claim {} / steal {} ms",
                self.steal_speedup, self.shared_claim_wall_ms_mean, last_mean
            ));
        }
        Ok(())
    }
}

/// Version of the `BENCH_graph.json` schema. Bump on breaking changes to
/// [`GraphReport`].
pub const GRAPH_BENCH_SCHEMA_VERSION: u32 = 1;

/// One worker count of the blocking-graph kernel sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphBenchPoint {
    /// Dataflow workers used for this point.
    pub workers: usize,
    /// Partitions the executor derived from the worker count.
    pub partitions: usize,
    /// Mean graph-construction wall time over the repetitions, milliseconds.
    pub wall_ms_mean: f64,
    /// Fastest repetition, milliseconds.
    pub wall_ms_min: f64,
    /// Speedup vs the 1-worker mean (first point ≡ 1.0).
    pub speedup: f64,
    /// Mean wall of the `graph/gamma*` stages (union + row pass +
    /// transpose), milliseconds. The acceptance evidence that the γ pass
    /// actually parallelizes lives in this column.
    pub gamma_wall_ms: f64,
    /// Mean wall of the `graph/beta/*` stages, milliseconds.
    pub beta_wall_ms: f64,
    /// Retained value (β) candidates across both sides.
    pub value_candidates: u64,
    /// Retained neighbor (γ) candidates across both sides.
    pub neighbor_candidates: u64,
    /// [`minoaner_blocking::BlockingGraph::weight_digest`] of the built
    /// graph — must be identical across worker counts (determinism gate).
    pub weight_digest: u64,
}

/// The top-level contents of `BENCH_graph.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphReport {
    /// [`GRAPH_BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// [`minoaner_dataflow::TRACE_SCHEMA_VERSION`] of the traces the
    /// points were extracted from.
    pub trace_schema_version: u32,
    /// Datagen profile name.
    pub dataset: String,
    /// `MINOANER_SCALE` the dataset was generated at.
    pub scale: f64,
    /// Repetitions per worker count.
    pub reps: usize,
    /// Mean wall of the pre-rewrite sequential kernel
    /// (`minoaner_blocking::reference`), milliseconds, same repetitions.
    pub reference_wall_ms_mean: f64,
    /// `reference_wall_ms_mean / points[0].wall_ms_mean` — the rewrite's
    /// single-threaded speedup over the old kernel.
    pub speedup_vs_reference: f64,
    /// One point per worker count, ascending.
    pub points: Vec<GraphBenchPoint>,
}

impl GraphReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report previously produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Checks the report against the schema invariants, returning the
    /// first violation. Runs after writing `BENCH_graph.json` (and in CI).
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != GRAPH_BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} does not match supported version {GRAPH_BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.trace_schema_version != minoaner_dataflow::TRACE_SCHEMA_VERSION {
            return Err(format!(
                "trace_schema_version {} does not match supported version {}",
                self.trace_schema_version,
                minoaner_dataflow::TRACE_SCHEMA_VERSION
            ));
        }
        if self.dataset.is_empty() {
            return Err("dataset name is empty".into());
        }
        if !(self.scale > 0.0) {
            return Err(format!("scale must be positive, got {}", self.scale));
        }
        if self.reps == 0 {
            return Err("reps must be ≥ 1".into());
        }
        if self.points.is_empty() {
            return Err("no bench points recorded".into());
        }
        let mut prev_workers = 0usize;
        for (i, p) in self.points.iter().enumerate() {
            if p.workers <= prev_workers {
                return Err(format!(
                    "point {i}: worker counts must be positive and strictly ascending \
                     ({prev_workers} then {})",
                    p.workers
                ));
            }
            prev_workers = p.workers;
            if p.partitions < p.workers {
                return Err(format!(
                    "point {i}: {} partitions cannot be fewer than {} workers",
                    p.partitions, p.workers
                ));
            }
            if !(p.wall_ms_mean > 0.0) || !(p.wall_ms_min > 0.0) {
                return Err(format!("point {i}: wall times must be positive"));
            }
            if p.wall_ms_min > p.wall_ms_mean {
                return Err(format!(
                    "point {i}: min wall time {} exceeds mean {}",
                    p.wall_ms_min, p.wall_ms_mean
                ));
            }
            if !(p.speedup > 0.0) {
                return Err(format!("point {i}: speedup must be positive, got {}", p.speedup));
            }
            if !(p.gamma_wall_ms >= 0.0) || !(p.beta_wall_ms >= 0.0) {
                return Err(format!("point {i}: stage walls must be finite and non-negative"));
            }
        }
        if (self.points[0].speedup - 1.0).abs() > 1e-9 {
            return Err(format!(
                "first point is the speedup baseline and must be 1.0, got {}",
                self.points[0].speedup
            ));
        }
        let first = &self.points[0];
        for (i, p) in self.points.iter().enumerate().skip(1) {
            if p.weight_digest != first.weight_digest {
                return Err(format!(
                    "point {i}: weight digest {:#018x} differs from the 1-worker digest \
                     {:#018x} (nondeterminism across worker counts)",
                    p.weight_digest, first.weight_digest
                ));
            }
            if p.value_candidates != first.value_candidates
                || p.neighbor_candidates != first.neighbor_candidates
            {
                return Err(format!(
                    "point {i}: candidate counts differ across worker counts (nondeterminism)"
                ));
            }
        }
        if !(self.reference_wall_ms_mean > 0.0) {
            return Err("reference kernel wall time must be positive".into());
        }
        let expected = self.reference_wall_ms_mean / first.wall_ms_mean;
        if !(self.speedup_vs_reference > 0.0)
            || (self.speedup_vs_reference - expected).abs() > 1e-6 * expected.max(1.0)
        {
            return Err(format!(
                "speedup_vs_reference {} inconsistent with reference {} / baseline {} ms",
                self.speedup_vs_reference, self.reference_wall_ms_mean, first.wall_ms_mean
            ));
        }
        Ok(())
    }
}

/// Version of the `BENCH_kb.json` schema. Bump on breaking changes to
/// [`KbLoadReport`].
pub const KB_BENCH_SCHEMA_VERSION: u32 = 1;

/// The minimum acceptable `.mkb` open speedup over text re-parsing — the
/// headline claim of the memory-mapped container, enforced by
/// [`KbLoadReport::validate`] so a regression fails the bench (and CI).
pub const KB_MIN_OPEN_SPEEDUP: f64 = 100.0;

/// The top-level contents of `BENCH_kb.json`: text parse vs `.mkb`
/// compile, mmap open, and first-touch materialization on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KbLoadReport {
    /// [`KB_BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Datagen profile name.
    pub dataset: String,
    /// `MINOANER_SCALE` the dataset was generated at.
    pub scale: f64,
    /// Repetitions per timed operation.
    pub reps: usize,
    /// Size of the compiled `.mkb` container, bytes.
    pub mkb_bytes: u64,
    /// Entities across both sides of the pair.
    pub entities: u64,
    /// Mean wall of parsing both N-Triples docs into a [`minoaner_kb::KbPair`],
    /// milliseconds.
    pub parse_ms_mean: f64,
    /// Wall of one `write_mkb` compile (parse excluded), milliseconds.
    pub compile_ms: f64,
    /// Mean wall of `MkbFile::open` (header + section-table validation,
    /// no data touched), milliseconds.
    pub open_ms_mean: f64,
    /// Mean wall of first-touch materialization (`verify` checksums +
    /// `to_pair`), milliseconds — the page-in cost `open` defers.
    pub page_in_ms_mean: f64,
    /// `parse_ms_mean / open_ms_mean` — what the container saves on every
    /// run after the first.
    pub open_speedup_vs_parse: f64,
}

impl KbLoadReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report previously produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Checks the report against the schema invariants, returning the
    /// first violation. Runs after writing `BENCH_kb.json` (and in CI).
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != KB_BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} does not match supported version {KB_BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.dataset.is_empty() {
            return Err("dataset name is empty".into());
        }
        if !(self.scale > 0.0) {
            return Err(format!("scale must be positive, got {}", self.scale));
        }
        if self.reps == 0 {
            return Err("reps must be ≥ 1".into());
        }
        if self.mkb_bytes == 0 {
            return Err("mkb_bytes is zero — nothing was compiled".into());
        }
        if self.entities == 0 {
            return Err("entities is zero — empty dataset measures nothing".into());
        }
        for (name, v) in [
            ("parse_ms_mean", self.parse_ms_mean),
            ("compile_ms", self.compile_ms),
            ("open_ms_mean", self.open_ms_mean),
            ("page_in_ms_mean", self.page_in_ms_mean),
        ] {
            if !(v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        let expected = self.parse_ms_mean / self.open_ms_mean;
        if !(self.open_speedup_vs_parse > 0.0)
            || (self.open_speedup_vs_parse - expected).abs() > 1e-6 * expected.max(1.0)
        {
            return Err(format!(
                "open_speedup_vs_parse {} inconsistent with parse {} / open {} ms",
                self.open_speedup_vs_parse, self.parse_ms_mean, self.open_ms_mean
            ));
        }
        if self.open_speedup_vs_parse < KB_MIN_OPEN_SPEEDUP {
            return Err(format!(
                "open_speedup_vs_parse {:.1} is below the required {KB_MIN_OPEN_SPEEDUP}× — \
                 mmap open must not re-do per-triple work",
                self.open_speedup_vs_parse
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        let point = |workers: usize, mean: f64| BenchPoint {
            workers,
            partitions: workers * 3,
            wall_ms_mean: mean,
            wall_ms_min: mean * 0.9,
            speedup: 40.0 / mean,
            matches: 88,
            comparisons_after_purge: 1234,
            shuffle_bytes: 5678,
        };
        PipelineReport {
            schema_version: BENCH_SCHEMA_VERSION,
            trace_schema_version: minoaner_dataflow::TRACE_SCHEMA_VERSION,
            dataset: "restaurant".into(),
            scale: 1.0,
            reps: 3,
            shared_claim_wall_ms_mean: 26.0,
            steal_speedup: 26.0 / 11.0,
            points: vec![point(1, 40.0), point(2, 24.0), point(4, 15.0), point(8, 11.0)],
        }
    }

    #[test]
    fn sample_report_round_trips_and_validates() {
        let report = sample();
        report.validate().expect("sample is valid");
        let back = PipelineReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let mut r = sample();
        r.schema_version += 1;
        assert!(r.validate().unwrap_err().contains("schema_version"));
    }

    #[test]
    fn validation_rejects_unordered_workers_and_bad_baseline() {
        let mut r = sample();
        r.points.swap(0, 1);
        assert!(r.validate().unwrap_err().contains("ascending"));

        let mut r = sample();
        r.points[0].speedup = 2.0;
        assert!(r.validate().unwrap_err().contains("baseline"));
    }

    #[test]
    fn validation_rejects_nondeterministic_matches() {
        let mut r = sample();
        r.points[2].matches += 1;
        assert!(r.validate().unwrap_err().contains("worker counts"));
    }

    #[test]
    fn validation_rejects_empty_points() {
        let mut r = sample();
        r.points.clear();
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_rejects_inconsistent_steal_speedup() {
        let mut r = sample();
        r.steal_speedup *= 2.0;
        assert!(r.validate().unwrap_err().contains("steal_speedup"));

        let mut r = sample();
        r.shared_claim_wall_ms_mean = 0.0;
        assert!(r.validate().is_err());
    }

    fn kb_sample() -> KbLoadReport {
        KbLoadReport {
            schema_version: KB_BENCH_SCHEMA_VERSION,
            dataset: "restaurant".into(),
            scale: 1.0,
            reps: 5,
            mkb_bytes: 1 << 20,
            entities: 1700,
            parse_ms_mean: 42.0,
            compile_ms: 55.0,
            open_ms_mean: 0.02,
            page_in_ms_mean: 3.5,
            open_speedup_vs_parse: 42.0 / 0.02,
        }
    }

    #[test]
    fn kb_report_round_trips_and_validates() {
        let report = kb_sample();
        report.validate().expect("sample is valid");
        let back = KbLoadReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn kb_validation_rejects_sub_100x_open() {
        let mut r = kb_sample();
        r.open_ms_mean = r.parse_ms_mean / 50.0;
        r.open_speedup_vs_parse = 50.0;
        let err = r.validate().unwrap_err();
        assert!(err.contains("below the required"), "got {err}");
    }

    #[test]
    fn kb_validation_rejects_inconsistent_speedup_and_schema_drift() {
        let mut r = kb_sample();
        r.open_speedup_vs_parse *= 3.0;
        assert!(r.validate().unwrap_err().contains("inconsistent"));

        let mut r = kb_sample();
        r.schema_version += 1;
        assert!(r.validate().unwrap_err().contains("schema_version"));

        let mut r = kb_sample();
        r.mkb_bytes = 0;
        assert!(r.validate().is_err());

        let mut r = kb_sample();
        r.open_ms_mean = 0.0;
        assert!(r.validate().is_err());
    }

    fn graph_sample() -> GraphReport {
        let point = |workers: usize, mean: f64| GraphBenchPoint {
            workers,
            partitions: workers * 3,
            wall_ms_mean: mean,
            wall_ms_min: mean * 0.9,
            speedup: 30.0 / mean,
            gamma_wall_ms: mean * 0.4,
            beta_wall_ms: mean * 0.3,
            value_candidates: 4200,
            neighbor_candidates: 3100,
            weight_digest: 0xDEAD_BEEF_CAFE_F00D,
        };
        GraphReport {
            schema_version: GRAPH_BENCH_SCHEMA_VERSION,
            trace_schema_version: minoaner_dataflow::TRACE_SCHEMA_VERSION,
            dataset: "restaurant".into(),
            scale: 1.0,
            reps: 3,
            reference_wall_ms_mean: 75.0,
            speedup_vs_reference: 75.0 / 30.0,
            points: vec![point(1, 30.0), point(2, 18.0), point(4, 11.0), point(8, 8.0)],
        }
    }

    #[test]
    fn graph_report_round_trips_and_validates() {
        let report = graph_sample();
        report.validate().expect("sample is valid");
        let back = GraphReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn graph_validation_rejects_digest_drift_across_workers() {
        let mut r = graph_sample();
        r.points[2].weight_digest ^= 1;
        assert!(r.validate().unwrap_err().contains("digest"));
    }

    #[test]
    fn graph_validation_rejects_candidate_count_drift() {
        let mut r = graph_sample();
        r.points[3].neighbor_candidates += 1;
        assert!(r.validate().unwrap_err().contains("candidate counts"));
    }

    #[test]
    fn graph_validation_rejects_inconsistent_reference_speedup() {
        let mut r = graph_sample();
        r.speedup_vs_reference *= 2.0;
        assert!(r.validate().unwrap_err().contains("speedup_vs_reference"));

        let mut r = graph_sample();
        r.reference_wall_ms_mean = 0.0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn graph_validation_rejects_schema_drift_and_bad_baseline() {
        let mut r = graph_sample();
        r.schema_version += 1;
        assert!(r.validate().unwrap_err().contains("schema_version"));

        let mut r = graph_sample();
        r.points[0].speedup = 0.5;
        assert!(r.validate().unwrap_err().contains("baseline"));
    }
}
