//! A LINDA-style matcher (Böhm et al., CIKM 2012) — the remaining system
//! of Table 3, which neither the paper's authors nor we could run as a
//! binary; this analogue implements its published core ideas so the row
//! can be measured rather than only quoted.
//!
//! LINDA's distinctive traits, per its paper and the MinoanER §5 summary:
//!
//! * joint, data-driven iteration with a priority queue resolved by
//!   unique mapping and a similarity threshold;
//! * *compatible neighbors* are those connected via relations with
//!   **similar names** (small edit distance) — unlike SiGMa's pre-aligned
//!   relations and unlike MinoanER's statistics, LINDA trusts labels;
//! * matched neighbor pairs boost their parents' scores (link-based
//!   feedback).
//!
//! As the MinoanER paper notes, the relation-name-similarity requirement
//! "rarely holds in the extreme schema heterogeneity of Web data" — which
//! is exactly how this analogue degrades on the BBCmusic-DBpedia-like
//! profile (KB-specific relation names share no edit-distance signal).

use minoaner_det::DetHashMap;

use minoaner_dataflow::Executor;
use minoaner_kb::stats::TokenEf;
use minoaner_kb::{AttrId, EntityId, KbPair, Side};

use crate::umc::unique_mapping_clustering;

/// LINDA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LindaConfig {
    /// Acceptance threshold on the combined score.
    pub threshold: f64,
    /// Weight of the neighbor feedback term.
    pub neighbor_weight: f64,
    /// Maximum normalized edit distance for two relation names to count
    /// as compatible.
    pub max_relation_edit_distance: f64,
    /// Data-driven iteration bound.
    pub max_rounds: usize,
}

impl Default for LindaConfig {
    fn default() -> Self {
        Self {
            threshold: 0.35,
            neighbor_weight: 0.4,
            max_relation_edit_distance: 0.4,
            max_rounds: 10,
        }
    }
}

/// Levenshtein distance, normalized by the longer string's length.
pub fn normalized_edit_distance(a: &str, b: &str) -> f64 {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()] as f64 / a.len().max(b.len()) as f64
}

/// The local name of a relation (after the last `/`, `#` or `:`),
/// lower-cased — what LINDA compares across KBs.
fn relation_local_name(pair: &KbPair, attr: AttrId) -> String {
    let full = pair.attrs().resolve(minoaner_kb::Symbol(attr.0));
    minoaner_kb::tokenize::uri_local_name(full).to_lowercase()
}

/// Pairs of relations whose names are within the edit-distance bound.
fn compatible_relations(pair: &KbPair, cfg: &LindaConfig) -> Vec<(AttrId, AttrId)> {
    let mut left: Vec<AttrId> = Vec::new();
    let mut right: Vec<AttrId> = Vec::new();
    for (side, out) in [(Side::Left, &mut left), (Side::Right, &mut right)] {
        let kb = pair.kb(side);
        let mut seen = minoaner_det::DetHashSet::default();
        for (_, e) in kb.iter() {
            for (r, _) in e.relation_pairs() {
                seen.insert(r);
            }
        }
        out.extend(seen);
        out.sort_unstable();
    }
    let mut out = Vec::new();
    for &rl in &left {
        let nl = relation_local_name(pair, rl);
        for &rr in &right {
            let nr = relation_local_name(pair, rr);
            if normalized_edit_distance(&nl, &nr) <= cfg.max_relation_edit_distance {
                out.push((rl, rr));
            }
        }
    }
    out
}

/// Normalized weighted-Jaccard value similarity (shared with the SiGMa
/// analogue's notion of similarity).
fn value_similarity(pair: &KbPair, ef: &TokenEf, l: EntityId, r: EntityId) -> f64 {
    let a = pair.kb(Side::Left).tokens_of(l);
    let b = pair.kb(Side::Right).tokens_of(r);
    let (mut i, mut j) = (0, 0);
    let (mut inter, mut union) = (0.0, 0.0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                union += ef.token_weight_clamped(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += ef.token_weight_clamped(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let w = ef.token_weight(a[i]);
                inter += w;
                union += w;
                i += 1;
                j += 1;
            }
        }
    }
    for &t in &a[i..] {
        union += ef.token_weight_clamped(t);
    }
    for &t in &b[j..] {
        union += ef.token_weight_clamped(t);
    }
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Runs LINDA-style joint matching.
pub fn run_linda(executor: &Executor, pair: &KbPair, cfg: &LindaConfig) -> Vec<(EntityId, EntityId)> {
    let ef = executor.time_stage("linda/ef", || TokenEf::compute(pair));
    let compat = executor.time_stage("linda/compatible-relations", || compatible_relations(pair, cfg));
    let compat_set: minoaner_det::DetHashSet<(AttrId, AttrId)> = compat.into_iter().collect();

    // Initial candidates: pairs sharing at least two tokens (as in SiGMa's
    // candidate generation, which LINDA shares in spirit), scored by value
    // similarity.
    let blocks = minoaner_blocking::token::build_token_blocks(pair);
    let mut shared_count: DetHashMap<(u32, u32), u32> = DetHashMap::default();
    for (_, b) in &blocks.blocks {
        if b.comparisons() > 50_000 {
            continue; // stopword guard
        }
        for &l in &b.left {
            for &r in &b.right {
                *shared_count.entry((l.0, r.0)).or_insert(0) += 1;
            }
        }
    }
    let candidates: Vec<(EntityId, EntityId)> = shared_count
        .iter()
        .filter(|&(_, &c)| c >= 2)
        .map(|(&(l, r), _)| (EntityId(l), EntityId(r)))
        .collect();

    // In-edge lists so link feedback flows in both directions.
    let in_edges = |side: Side| -> Vec<Vec<(AttrId, EntityId)>> {
        let kb = pair.kb(side);
        let mut rev: Vec<Vec<(AttrId, EntityId)>> = vec![Vec::new(); kb.len()];
        for (x, e) in kb.iter() {
            for (r, t) in e.relation_pairs() {
                rev[t.index()].push((r, x));
            }
        }
        rev
    };
    let in_l = in_edges(Side::Left);
    let in_r = in_edges(Side::Right);

    let mut matched_l: DetHashMap<EntityId, EntityId> = DetHashMap::default();
    let mut matched_r: DetHashMap<EntityId, EntityId> = DetHashMap::default();

    for round in 0..cfg.max_rounds {
        let added = executor.time_stage(&format!("linda/round-{round}"), || {
            let mut scored: Vec<(EntityId, EntityId, f64)> = Vec::new();
            for &(l, r) in &candidates {
                if matched_l.contains_key(&l) || matched_r.contains_key(&r) {
                    continue;
                }
                let v = value_similarity(pair, &ef, l, r);
                // Link-based feedback through *compatible* relations only,
                // in both edge directions.
                let mut fed = 0.0;
                let mut total = 0.0;
                for (rl, nl) in pair.kb(Side::Left).entity(l).relation_pairs() {
                    total += 1.0;
                    if let Some(&mr) = matched_l.get(&nl) {
                        let compatible = pair
                            .kb(Side::Right)
                            .entity(r)
                            .relation_pairs()
                            .any(|(rr, nr)| nr == mr && compat_set.contains(&(rl, rr)));
                        if compatible {
                            fed += 1.0;
                        }
                    }
                }
                for &(rl, pl) in &in_l[l.index()] {
                    total += 1.0;
                    if let Some(&mr) = matched_l.get(&pl) {
                        let compatible = in_r[r.index()]
                            .iter()
                            .any(|&(rr, pr)| pr == mr && compat_set.contains(&(rl, rr)));
                        if compatible {
                            fed += 1.0;
                        }
                    }
                }
                let feedback = if total == 0.0 { 0.0 } else { fed / total };
                let score = v + cfg.neighbor_weight * feedback;
                if score >= cfg.threshold {
                    scored.push((l, r, score));
                }
            }
            let accepted = unique_mapping_clustering(scored, cfg.threshold);
            let mut added = 0;
            for (l, r) in accepted {
                if !matched_l.contains_key(&l) && !matched_r.contains_key(&r) {
                    matched_l.insert(l, r);
                    matched_r.insert(r, l);
                    added += 1;
                }
            }
            added
        });
        if added == 0 {
            break;
        }
    }

    let mut out: Vec<(EntityId, EntityId)> = matched_l.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoaner_kb::{KbPairBuilder, Term};

    #[test]
    fn edit_distance_basics() {
        assert_eq!(normalized_edit_distance("", ""), 0.0);
        assert_eq!(normalized_edit_distance("abc", "abc"), 0.0);
        assert!((normalized_edit_distance("kitten", "sitting") - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(normalized_edit_distance("a", ""), 1.0);
    }

    #[test]
    fn similar_relation_names_are_compatible() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:x", "http://a/hasChef", Term::Uri("l:y"));
        b.add_triple(Side::Left, "l:y", "p", Term::Literal("v"));
        b.add_triple(Side::Right, "r:x", "http://b/headChef", Term::Uri("r:y"));
        b.add_triple(Side::Right, "r:y", "q", Term::Literal("v"));
        let pair = b.finish();
        let compat = compatible_relations(&pair, &LindaConfig::default());
        assert_eq!(compat.len(), 1, "hasChef ~ headChef within 0.4 edit distance");
    }

    #[test]
    fn dissimilar_relation_names_are_not() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:x", "http://a/rel0", Term::Uri("l:y"));
        b.add_triple(Side::Left, "l:y", "p", Term::Literal("v"));
        b.add_triple(Side::Right, "r:x", "http://b/completelyDifferent", Term::Uri("r:y"));
        b.add_triple(Side::Right, "r:y", "q", Term::Literal("v"));
        let pair = b.finish();
        let compat = compatible_relations(&pair, &LindaConfig::default());
        assert!(compat.is_empty());
    }

    #[test]
    fn matches_strongly_similar_pairs() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:a", "p", Term::Literal("alpha beta gamma delta"));
        b.add_triple(Side::Right, "r:a", "q", Term::Literal("alpha beta gamma delta"));
        b.add_triple(Side::Left, "l:b", "p", Term::Literal("one two three four"));
        b.add_triple(Side::Right, "r:b", "q", Term::Literal("five six seven eight"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let m = run_linda(&exec, &pair, &LindaConfig::default());
        assert_eq!(m.len(), 1);
        assert_eq!(pair.uri_of(Side::Left, m[0].0), "l:a");
    }

    #[test]
    fn feedback_promotes_borderline_neighbors() {
        let mut b = KbPairBuilder::new();
        // Anchors match by value; the children share only 2 of 5 tokens
        // (below threshold alone) but are connected via similarly named
        // relations to matched parents.
        b.add_triple(Side::Left, "l:p", "l:label", Term::Literal("anchor alpha beta gamma"));
        b.add_triple(Side::Left, "l:p", "http://a/hasPart", Term::Uri("l:c"));
        b.add_triple(Side::Left, "l:c", "l:label", Term::Literal("kid one two five six"));
        b.add_triple(Side::Right, "r:p", "r:name", Term::Literal("anchor alpha beta gamma"));
        b.add_triple(Side::Right, "r:p", "http://b/hasParts", Term::Uri("r:c"));
        b.add_triple(Side::Right, "r:c", "r:name", Term::Literal("kid one two seven nine"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let cfg = LindaConfig { threshold: 0.55, neighbor_weight: 0.5, ..Default::default() };
        let with_feedback = run_linda(&exec, &pair, &cfg);
        let child = (
            pair.kb(Side::Left).entity_by_uri(pair.uris().get("l:c").unwrap()).unwrap(),
            pair.kb(Side::Right).entity_by_uri(pair.uris().get("r:c").unwrap()).unwrap(),
        );
        assert!(with_feedback.contains(&child), "feedback should rescue the child: {with_feedback:?}");
    }
}
