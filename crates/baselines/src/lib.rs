//! # minoaner-baselines
//!
//! The baseline systems of the paper's evaluation (§6, Table 3),
//! implemented from their published descriptions so the comparison can be
//! *run*, not just quoted:
//!
//! * [`bsl`] — the heavily fine-tuned value-only baseline: token n-grams ×
//!   {TF, TF-IDF} × {Cosine, Jaccard, Generalized Jaccard, SiGMa} ×
//!   20 thresholds = the paper's 420-configuration grid, resolved with
//!   Unique Mapping Clustering;
//! * [`paris`] — PARIS-style probabilistic matching on property
//!   functionality (Suchanek et al., PVLDB 2011);
//! * [`sigma`] — SiGMa-style greedy propagation from identical-name seeds
//!   over aligned relations (Lacoste-Julien et al., KDD 2013);
//! * [`rimom`] — RiMOM-IM-style iterative matching with the
//!   one-left-object heuristic (Shao et al., JCST 2016);
//! * [`linda`] — LINDA-style joint matching with edit-distance relation
//!   compatibility (Böhm et al., CIKM 2012);
//! * [`umc`] — Unique Mapping Clustering, shared by all of the above;
//! * [`published`] — the paper's Table 3/Table 4 numbers, for printing
//!   alongside measured results.
//!
//! Each analogue documents its simplifications in its module docs.

pub mod bsl;
pub mod linda;
pub mod paris;
pub mod published;
pub mod rimom;
pub mod sigma;
pub mod umc;

pub use bsl::{grid_search, BslConfig, BslReport};
pub use linda::{run_linda, LindaConfig};
pub use paris::{run_paris, ParisConfig};
pub use rimom::{run_rimom, RimomConfig};
pub use sigma::{run_sigma, SigmaConfig};
pub use umc::unique_mapping_clustering;
