//! The precision / recall / F1 numbers published in Table 3 of the paper,
//! for printing alongside our measured results. The paper itself copied
//! the SiGMa, LINDA and RiMOM rows from their original publications
//! (those systems could not be run); PARIS and BSL were run by the
//! authors; MinoanER is the paper's own result. `None` = not reported.

/// One published Table 3 cell (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedQuality {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl PublishedQuality {
    const fn new(precision: f64, recall: f64, f1: f64) -> Self {
        Self { precision, recall, f1 }
    }
}

/// The four evaluation datasets, in Table order.
pub const DATASETS: [&str; 4] = ["Restaurant", "Rexa-DBLP", "BBCmusic-DBpedia", "YAGO-IMDb"];

/// The systems of Table 3, in row order.
pub const SYSTEMS: [&str; 6] = ["SiGMa", "LINDA", "RiMOM", "PARIS", "BSL", "MinoanER"];

/// Published result for `system` on `dataset`, if the paper reports one.
pub fn published(system: &str, dataset: &str) -> Option<PublishedQuality> {
    let q = PublishedQuality::new;
    Some(match (system, dataset) {
        ("SiGMa", "Restaurant") => q(99.0, 94.0, 97.0),
        ("SiGMa", "Rexa-DBLP") => q(97.0, 90.0, 94.0),
        ("SiGMa", "YAGO-IMDb") => q(98.0, 85.0, 91.0),
        ("LINDA", "Restaurant") => q(100.0, 63.0, 77.0),
        ("RiMOM", "Restaurant") => q(86.0, 77.0, 81.0),
        ("RiMOM", "Rexa-DBLP") => q(80.0, 72.0, 76.0),
        ("PARIS", "Restaurant") => q(95.0, 88.0, 91.0),
        ("PARIS", "Rexa-DBLP") => q(93.95, 89.0, 91.41),
        ("PARIS", "BBCmusic-DBpedia") => q(19.40, 0.29, 0.51),
        ("PARIS", "YAGO-IMDb") => q(94.0, 90.0, 92.0),
        ("BSL", "Restaurant") => q(100.0, 100.0, 100.0),
        ("BSL", "Rexa-DBLP") => q(96.57, 83.96, 89.82),
        ("BSL", "BBCmusic-DBpedia") => q(85.20, 36.09, 50.70),
        ("BSL", "YAGO-IMDb") => q(11.68, 4.87, 6.88),
        ("MinoanER", "Restaurant") => q(100.0, 100.0, 100.0),
        ("MinoanER", "Rexa-DBLP") => q(96.74, 95.34, 96.04),
        ("MinoanER", "BBCmusic-DBpedia") => q(91.44, 88.55, 89.97),
        ("MinoanER", "YAGO-IMDb") => q(91.02, 90.57, 90.79),
        _ => return None,
    })
}

/// Published Table 4 (per-rule) numbers: `(rule, dataset) → (P, R, F1)`.
/// Rules are `"R1" | "R2" | "R3" | "noR4" | "noNeighbors"`.
pub fn published_rule(rule: &str, dataset: &str) -> Option<PublishedQuality> {
    let q = PublishedQuality::new;
    Some(match (rule, dataset) {
        ("R1", "Restaurant") => q(100.0, 68.54, 81.33),
        ("R1", "Rexa-DBLP") => q(97.36, 87.47, 92.15),
        ("R1", "BBCmusic-DBpedia") => q(99.85, 66.11, 79.55),
        ("R1", "YAGO-IMDb") => q(97.55, 66.53, 79.11),
        ("R2", "Restaurant") => q(100.0, 100.0, 100.0),
        ("R2", "Rexa-DBLP") => q(96.15, 30.56, 46.38),
        ("R2", "BBCmusic-DBpedia") => q(90.73, 37.01, 52.66),
        ("R2", "YAGO-IMDb") => q(98.02, 69.14, 81.08),
        ("R3", "Restaurant") => q(98.88, 98.88, 98.88),
        ("R3", "Rexa-DBLP") => q(94.73, 94.73, 94.73),
        ("R3", "BBCmusic-DBpedia") => q(81.49, 81.49, 81.49),
        ("R3", "YAGO-IMDb") => q(90.51, 90.50, 90.50),
        ("noR4", "Restaurant") => q(100.0, 100.0, 100.0),
        ("noR4", "Rexa-DBLP") => q(96.03, 96.03, 96.03),
        ("noR4", "BBCmusic-DBpedia") => q(89.93, 89.93, 89.93),
        ("noR4", "YAGO-IMDb") => q(90.58, 90.57, 90.58),
        ("noNeighbors", "Restaurant") => q(100.0, 100.0, 100.0),
        ("noNeighbors", "Rexa-DBLP") => q(96.59, 95.26, 95.92),
        ("noNeighbors", "BBCmusic-DBpedia") => q(89.22, 85.36, 87.25),
        ("noNeighbors", "YAGO-IMDb") => q(88.05, 87.42, 87.73),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minoaner_reported_on_all_datasets() {
        for d in DATASETS {
            assert!(published("MinoanER", d).is_some(), "{d}");
        }
    }

    #[test]
    fn linda_reported_only_on_restaurant() {
        assert!(published("LINDA", "Restaurant").is_some());
        assert!(published("LINDA", "Rexa-DBLP").is_none());
        assert!(published("LINDA", "YAGO-IMDb").is_none());
    }

    #[test]
    fn paris_collapse_on_bbc_is_recorded() {
        let q = published("PARIS", "BBCmusic-DBpedia").unwrap();
        assert!(q.f1 < 1.0);
    }

    #[test]
    fn rule_table_covers_all_rules_and_datasets() {
        for rule in ["R1", "R2", "R3", "noR4", "noNeighbors"] {
            for d in DATASETS {
                assert!(published_rule(rule, d).is_some(), "{rule}/{d}");
            }
        }
        assert!(published_rule("R9", "Restaurant").is_none());
    }
}
