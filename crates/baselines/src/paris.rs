//! A PARIS-style probabilistic matcher (Suchanek et al., PVLDB 2011) —
//! the only baseline the paper could run directly (§6). PARIS derives
//! match probabilities from the *functionality* of properties: sharing a
//! value of a highly inverse-functional attribute (one whose value
//! identifies its subject) is strong evidence, and matched neighbors
//! propagate probability through aligned relations, iterated to fixpoint.
//!
//! This is an instance-matching reimplementation of the published
//! algorithm (the part Table 3 measures), with the usual engineering
//! simplifications: hard acceptance at 0.5 when counting relation
//! alignments, a fan-out cap on frequent literals, and a fixed iteration
//! budget. One deliberate difference: literals are compared in
//! *normalized* form (as everywhere in this workspace), which makes this
//! analogue slightly **stronger** than the original on noisy data — the
//! original's near-zero recall on BBCmusic-DBpedia (Table 3) is partly
//! due to exact string comparison. Structural heterogeneity still hurts
//! it the way the paper describes: when one KB splits a relation over
//! many names, alignment mass dilutes and propagation stalls.

use minoaner_det::DetHashMap;

use minoaner_dataflow::Executor;
use minoaner_kb::{AttrId, EntityId, KbPair, LiteralId, Side};

use crate::umc::unique_mapping_clustering;

/// PARIS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParisConfig {
    /// Propagation iterations (the original converges in a handful).
    pub iterations: usize,
    /// Final acceptance threshold on the match probability.
    pub threshold: f64,
    /// Literals occurring in more entities than this (per side) are
    /// skipped when seeding (PARIS prunes over-frequent values too).
    pub max_literal_fanout: usize,
}

impl Default for ParisConfig {
    fn default() -> Self {
        Self { iterations: 4, threshold: 0.5, max_literal_fanout: 50 }
    }
}

/// Inverse functionality of every attribute on one side:
/// `ifun(a) = |distinct values(a)| / |instances(a)|` — 1.0 means a value
/// of `a` identifies its subject.
fn inverse_functionality(pair: &KbPair, side: Side) -> Vec<f64> {
    let n_attrs = pair.attr_space();
    let mut instances = vec![0u64; n_attrs];
    let mut lit_values: Vec<minoaner_det::DetHashSet<LiteralId>> =
        vec![Default::default(); n_attrs];
    let mut ref_values: Vec<minoaner_det::DetHashSet<EntityId>> =
        vec![Default::default(); n_attrs];
    let kb = pair.kb(side);
    for (_, e) in kb.iter() {
        for &(a, v) in &e.pairs {
            instances[a.index()] += 1;
            match v {
                minoaner_kb::Value::Literal(l) => {
                    lit_values[a.index()].insert(l);
                }
                minoaner_kb::Value::Ref(t) => {
                    ref_values[a.index()].insert(t);
                }
            }
        }
    }
    (0..n_attrs)
        .map(|a| {
            if instances[a] == 0 {
                0.0
            } else {
                (lit_values[a].len() + ref_values[a].len()) as f64 / instances[a] as f64
            }
        })
        .collect()
}

/// Runs PARIS-style matching and returns the accepted matches.
pub fn run_paris(executor: &Executor, pair: &KbPair, cfg: &ParisConfig) -> Vec<(EntityId, EntityId)> {
    let ifun_l = executor.time_stage("paris/ifun-left", || inverse_functionality(pair, Side::Left));
    let ifun_r = executor.time_stage("paris/ifun-right", || inverse_functionality(pair, Side::Right));

    // --- Seeds from shared literals ---
    // literal → [(attr, entity)] per side.
    let mut index_l: DetHashMap<LiteralId, Vec<(AttrId, EntityId)>> = DetHashMap::default();
    let mut index_r: DetHashMap<LiteralId, Vec<(AttrId, EntityId)>> = DetHashMap::default();
    for (side, index) in [(Side::Left, &mut index_l), (Side::Right, &mut index_r)] {
        let kb = pair.kb(side);
        for (id, e) in kb.iter() {
            for (a, l) in e.literal_pairs() {
                index.entry(l).or_default().push((a, id));
            }
        }
    }

    // prob(x ≡ y) accumulated as 1 - Π (1 - evidence).
    let mut one_minus: DetHashMap<(u32, u32), f64> = DetHashMap::default();
    for (lit, lefts) in &index_l {
        let Some(rights) = index_r.get(lit) else { continue };
        if lefts.len() > cfg.max_literal_fanout || rights.len() > cfg.max_literal_fanout {
            continue;
        }
        // Local inverse functionality: a value occurring in several
        // entities per side identifies none of them — the attribute-level
        // ifun is scaled down by the value's own fan-out, so only
        // (nearly) unique shared values seed matches, as in the original
        // where ifun is estimated per value occurrence.
        let local = 1.0 / (lefts.len() as f64 * rights.len() as f64);
        for &(al, x) in lefts {
            for &(ar, y) in rights {
                let evidence = ifun_l[al.index()] * ifun_r[ar.index()] * local;
                if evidence > 0.0 {
                    let slot = one_minus.entry((x.0, y.0)).or_insert(1.0);
                    *slot *= 1.0 - evidence.min(0.999);
                }
            }
        }
    }
    let seed_prob: DetHashMap<(u32, u32), f64> =
        one_minus.into_iter().map(|(k, om)| (k, 1.0 - om)).collect();
    let mut prob = seed_prob.clone();

    // Static per-run structures: relation usage counts and in-edge lists.
    let mut rel_count_l: DetHashMap<AttrId, u64> = DetHashMap::default();
    let mut rel_count_r: DetHashMap<AttrId, u64> = DetHashMap::default();
    for (_, e) in pair.kb(Side::Left).iter() {
        for (r, _) in e.relation_pairs() {
            *rel_count_l.entry(r).or_insert(0) += 1;
        }
    }
    for (_, e) in pair.kb(Side::Right).iter() {
        for (r, _) in e.relation_pairs() {
            *rel_count_r.entry(r).or_insert(0) += 1;
        }
    }
    let in_edges = |side: Side| -> Vec<Vec<(AttrId, EntityId)>> {
        let kb = pair.kb(side);
        let mut rev: Vec<Vec<(AttrId, EntityId)>> = vec![Vec::new(); kb.len()];
        for (x, e) in kb.iter() {
            for (r, t) in e.relation_pairs() {
                rev[t.index()].push((r, x));
            }
        }
        rev
    };
    let in_l = in_edges(Side::Left);
    let in_r = in_edges(Side::Right);

    // --- Iterative propagation through aligned relations ---
    for it in 0..cfg.iterations {
        executor.time_stage(&format!("paris/iteration-{it}"), || {
            let accepted: Vec<((u32, u32), f64)> =
                prob.iter().filter(|&(_, &p)| p >= cfg.threshold).map(|(&k, &p)| (k, p)).collect();

            // Relation alignment counts from accepted child pairs.
            let mut align: DetHashMap<(AttrId, AttrId), f64> = DetHashMap::default();
            for &((cx, cy), p) in &accepted {
                for &(rl, _) in &in_l[cx as usize] {
                    for &(rr, _) in &in_r[cy as usize] {
                        *align.entry((rl, rr)).or_insert(0.0) += p;
                    }
                }
            }
            let alignment = |rl: AttrId, rr: AttrId| -> f64 {
                let Some(&mass) = align.get(&(rl, rr)) else { return 0.0 };
                let denom = rel_count_l[&rl].min(rel_count_r[&rr]) as f64;
                (mass / denom.max(1.0)).min(1.0)
            };

            // Propagate in both directions. As with literals, evidence is
            // scaled by *local* (inverse) functionality: a child with many
            // parents on either side (a popular target like a country)
            // identifies none of them, while a 1-parent child (a
            // restaurant's own address) identifies its parent almost
            // surely — and symmetrically for children of matched parents.
            let mut updates: DetHashMap<(u32, u32), f64> = DetHashMap::default();
            let mut bump = |key: (u32, u32), evidence: f64| {
                let slot = updates.entry(key).or_insert(1.0);
                *slot *= 1.0 - evidence.min(0.999);
            };
            for &((cx, cy), p) in &accepted {
                // Upward: parents of matched children.
                let fan = in_l[cx as usize].len().max(in_r[cy as usize].len());
                if fan > 0 {
                    let local = 1.0 / fan as f64;
                    for &(rl, px) in &in_l[cx as usize] {
                        for &(rr, py) in &in_r[cy as usize] {
                            let a = alignment(rl, rr);
                            if a > 0.0 {
                                bump((px.0, py.0), a * p * local);
                            }
                        }
                    }
                }
                // Downward: children of matched parents.
                let kids_l: Vec<(AttrId, EntityId)> =
                    pair.kb(Side::Left).entity(EntityId(cx)).relation_pairs().collect();
                let kids_r: Vec<(AttrId, EntityId)> =
                    pair.kb(Side::Right).entity(EntityId(cy)).relation_pairs().collect();
                let fan = kids_l.len().max(kids_r.len());
                if fan > 0 {
                    let local = 1.0 / fan as f64;
                    for &(rl, kx) in &kids_l {
                        for &(rr, ky) in &kids_r {
                            let a = alignment(rl, rr);
                            if a > 0.0 {
                                bump((kx.0, ky.0), a * p * local);
                            }
                        }
                    }
                }
            }
            for (k, om) in updates {
                let propagated = 1.0 - om;
                let base = seed_prob.get(&k).copied().unwrap_or(0.0);
                let combined = 1.0 - (1.0 - base) * (1.0 - propagated);
                let entry = prob.entry(k).or_insert(0.0);
                if combined > *entry {
                    *entry = combined;
                }
            }
        });
    }

    let scored: Vec<(EntityId, EntityId, f64)> =
        prob.into_iter().map(|((x, y), p)| (EntityId(x), EntityId(y), p)).collect();
    unique_mapping_clustering(scored, cfg.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoaner_kb::{KbPairBuilder, Term};

    fn build() -> (KbPair, Vec<(EntityId, EntityId)>) {
        let mut b = KbPairBuilder::new();
        // Two movies with directors; names are inverse-functional.
        for (id, name, director) in
            [("m1", "alien covenant", "ridley scott"), ("m2", "dune part two", "denis villeneuve")]
        {
            b.add_triple(Side::Left, &format!("l:{id}"), "l:title", Term::Literal(name));
            b.add_triple(Side::Left, &format!("l:{id}"), "l:directedBy", Term::Uri(&format!("l:d_{id}")));
            b.add_triple(Side::Left, &format!("l:d_{id}"), "l:name", Term::Literal(director));
            b.add_triple(Side::Right, &format!("r:{id}"), "r:label", Term::Literal(name));
            b.add_triple(Side::Right, &format!("r:{id}"), "r:director", Term::Uri(&format!("r:d_{id}")));
            b.add_triple(Side::Right, &format!("r:d_{id}"), "r:label", Term::Literal(director));
        }
        let pair = b.finish();
        let mut gt = Vec::new();
        for uri in ["m1", "m2", "d_m1", "d_m2"] {
            let l = pair.kb(Side::Left).entity_by_uri(pair.uris().get(&format!("l:{uri}")).unwrap()).unwrap();
            let r = pair.kb(Side::Right).entity_by_uri(pair.uris().get(&format!("r:{uri}")).unwrap()).unwrap();
            gt.push((l, r));
        }
        (pair, gt)
    }

    #[test]
    fn inverse_functionality_distinguishes_attributes() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "a", "id", Term::Literal("unique-1"));
        b.add_triple(Side::Left, "b", "id", Term::Literal("unique-2"));
        b.add_triple(Side::Left, "a", "status", Term::Literal("active"));
        b.add_triple(Side::Left, "b", "status", Term::Literal("active"));
        b.add_triple(Side::Right, "r", "p", Term::Literal("x"));
        let pair = b.finish();
        let ifun = inverse_functionality(&pair, Side::Left);
        let id = pair.attrs().get("id").unwrap().0 as usize;
        let status = pair.attrs().get("status").unwrap().0 as usize;
        assert!((ifun[id] - 1.0).abs() < 1e-12);
        assert!((ifun[status] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paris_matches_via_shared_inverse_functional_literals() {
        let (pair, gt) = build();
        let exec = Executor::new(2);
        let matches = run_paris(&exec, &pair, &ParisConfig::default());
        let mut found = matches.clone();
        found.sort_unstable();
        let mut expected = gt.clone();
        expected.sort_unstable();
        assert_eq!(found, expected);
    }

    #[test]
    fn frequent_literals_are_skipped() {
        let mut b = KbPairBuilder::new();
        // A constant literal shared by everyone must not create seeds.
        for i in 0..10 {
            b.add_triple(Side::Left, &format!("l{i}"), "p", Term::Literal("constant"));
            b.add_triple(Side::Right, &format!("r{i}"), "q", Term::Literal("constant"));
        }
        let pair = b.finish();
        let exec = Executor::new(1);
        let cfg = ParisConfig { max_literal_fanout: 5, ..Default::default() };
        let matches = run_paris(&exec, &pair, &cfg);
        assert!(matches.is_empty(), "over-frequent literal must not seed matches");
    }

    #[test]
    fn unique_mapping_is_enforced() {
        let (pair, _) = build();
        let exec = Executor::new(1);
        let matches = run_paris(&exec, &pair, &ParisConfig::default());
        let mut lefts: Vec<_> = matches.iter().map(|&(l, _)| l).collect();
        lefts.sort_unstable();
        let len = lefts.len();
        lefts.dedup();
        assert_eq!(lefts.len(), len);
    }
}
