//! A RiMOM-IM-style iterative matcher (Shao et al., JCST 2016): blocking
//! on each entity's top-5 TF-IDF tokens, cosine TF-IDF similarity with
//! unique-mapping selection, and the *one-left-object* propagation
//! heuristic — if a matched pair is connected via aligned relations and
//! exactly one neighbor on each side is still unmatched, those two
//! neighbors are matched — iterated to fixpoint.
//!
//! Simplification vs the original: RiMOM-IM blocks on (attribute, token)
//! pairs and therefore needs attribute alignment (§5 of the MinoanER
//! paper); this analogue blocks on tokens alone, which is *more* lenient
//! on schema-heterogeneous data. Relation alignment is learned from the
//! current match set.

use minoaner_det::{DetHashMap, DetHashSet};

use minoaner_dataflow::Executor;
use minoaner_kb::stats::TokenEf;
use minoaner_kb::{AttrId, EntityId, KbPair, Side, TokenId};

use crate::umc::unique_mapping_clustering;

/// RiMOM-IM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RimomConfig {
    /// Number of top TF-IDF tokens per entity used as blocking keys.
    pub top_tokens: usize,
    /// Acceptance threshold on cosine similarity.
    pub threshold: f64,
    /// Maximum one-left-object propagation sweeps.
    pub max_sweeps: usize,
}

impl Default for RimomConfig {
    fn default() -> Self {
        Self { top_tokens: 5, threshold: 0.5, max_sweeps: 10 }
    }
}

/// Per-entity TF-IDF-ranked top tokens.
fn top_tokens(pair: &KbPair, ef: &TokenEf, side: Side, k: usize) -> Vec<Vec<TokenId>> {
    let kb = pair.kb(side);
    let mut out = Vec::with_capacity(kb.len());
    for (id, _) in kb.iter() {
        let mut toks: Vec<(TokenId, f64)> = kb
            .tokens_of(id)
            .iter()
            .map(|&t| {
                let df = (ef.ef(Side::Left, t) + ef.ef(Side::Right, t)).max(1) as f64;
                (t, 1.0 / df)
            })
            .collect();
        toks.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        toks.truncate(k);
        out.push(toks.into_iter().map(|(t, _)| t).collect());
    }
    out
}

/// Cosine similarity over inverse-EF-weighted token sets.
fn cosine(pair: &KbPair, ef: &TokenEf, l: EntityId, r: EntityId) -> f64 {
    let a = pair.kb(Side::Left).tokens_of(l);
    let b = pair.kb(Side::Right).tokens_of(r);
    let (mut i, mut j) = (0, 0);
    let mut dot = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = ef.token_weight(a[i]);
                dot += w * w;
                i += 1;
                j += 1;
            }
        }
    }
    let norm = |ts: &[TokenId]| -> f64 {
        ts.iter().map(|&t| ef.token_weight_clamped(t).powi(2)).sum::<f64>().sqrt()
    };
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Runs RiMOM-IM-style matching.
pub fn run_rimom(executor: &Executor, pair: &KbPair, cfg: &RimomConfig) -> Vec<(EntityId, EntityId)> {
    let ef = executor.time_stage("rimom/ef", || TokenEf::compute(pair));

    // --- Blocking on top-k TF-IDF tokens ---
    let top_l = top_tokens(pair, &ef, Side::Left, cfg.top_tokens);
    let top_r = top_tokens(pair, &ef, Side::Right, cfg.top_tokens);
    let mut by_token: DetHashMap<TokenId, (Vec<EntityId>, Vec<EntityId>)> = DetHashMap::default();
    for (i, toks) in top_l.iter().enumerate() {
        for &t in toks {
            by_token.entry(t).or_default().0.push(EntityId(i as u32));
        }
    }
    for (i, toks) in top_r.iter().enumerate() {
        for &t in toks {
            by_token.entry(t).or_default().1.push(EntityId(i as u32));
        }
    }
    let mut candidates: DetHashSet<(EntityId, EntityId)> = DetHashSet::default();
    for (_, (ls, rs)) in by_token {
        // Over-frequent keys carry no discriminative power (and would make
        // blocking quadratic); skip them like the original's block purging.
        if ls.len() * rs.len() > 10_000 {
            continue;
        }
        for &l in &ls {
            for &r in &rs {
                candidates.insert((l, r));
            }
        }
    }

    // --- Initial similarity pass + UMC ---
    let scored: Vec<(EntityId, EntityId, f64)> = executor.time_stage("rimom/similarity", || {
        candidates
            .iter()
            .map(|&(l, r)| (l, r, cosine(pair, &ef, l, r)))
            .filter(|&(_, _, s)| s >= cfg.threshold)
            .collect()
    });
    let initial = unique_mapping_clustering(scored, cfg.threshold);
    let mut matched_l: DetHashMap<EntityId, EntityId> = initial.iter().copied().collect();
    let mut matched_r: DetHashMap<EntityId, EntityId> =
        initial.iter().map(|&(l, r)| (r, l)).collect();

    // --- One-left-object sweeps ---
    for sweep in 0..cfg.max_sweeps {
        let added = executor.time_stage(&format!("rimom/sweep-{sweep}"), || {
            // Relation alignment from current matches.
            let mut align: DetHashSet<(AttrId, AttrId)> = DetHashSet::default();
            for (&l, &r) in &matched_l {
                for (rl, nl) in pair.kb(Side::Left).entity(l).relation_pairs() {
                    if let Some(&mr) = matched_l.get(&nl) {
                        for (rr, nr) in pair.kb(Side::Right).entity(r).relation_pairs() {
                            if nr == mr {
                                align.insert((rl, rr));
                            }
                        }
                    }
                }
            }
            let mut new_pairs: Vec<(EntityId, EntityId)> = Vec::new();
            for (&l, &r) in &matched_l {
                for &(rl, rr) in &align {
                    let open_l: Vec<EntityId> = pair
                        .kb(Side::Left)
                        .entity(l)
                        .relation_pairs()
                        .filter(|&(a, n)| a == rl && !matched_l.contains_key(&n))
                        .map(|(_, n)| n)
                        .collect();
                    let open_r: Vec<EntityId> = pair
                        .kb(Side::Right)
                        .entity(r)
                        .relation_pairs()
                        .filter(|&(a, n)| a == rr && !matched_r.contains_key(&n))
                        .map(|(_, n)| n)
                        .collect();
                    // The one-left-object heuristic.
                    if let ([nl], [nr]) = (open_l.as_slice(), open_r.as_slice()) {
                        new_pairs.push((*nl, *nr));
                    }
                }
            }
            new_pairs.sort_unstable();
            new_pairs.dedup();
            let mut added = 0;
            for (l, r) in new_pairs {
                if !matched_l.contains_key(&l) && !matched_r.contains_key(&r) {
                    matched_l.insert(l, r);
                    matched_r.insert(r, l);
                    added += 1;
                }
            }
            added
        });
        if added == 0 {
            break;
        }
    }

    let mut out: Vec<(EntityId, EntityId)> = matched_l.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoaner_kb::{KbPairBuilder, Term};

    fn eid(pair: &KbPair, side: Side, uri: &str) -> EntityId {
        pair.kb(side).entity_by_uri(pair.uris().get(uri).unwrap()).unwrap()
    }

    #[test]
    fn matches_high_cosine_pairs() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:a", "p", Term::Literal("alpha beta gamma"));
        b.add_triple(Side::Right, "r:a", "q", Term::Literal("alpha beta gamma"));
        b.add_triple(Side::Left, "l:b", "p", Term::Literal("totally different words"));
        b.add_triple(Side::Right, "r:b", "q", Term::Literal("unrelated other stuff"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let matches = run_rimom(&exec, &pair, &RimomConfig::default());
        assert_eq!(matches, vec![(eid(&pair, Side::Left, "l:a"), eid(&pair, Side::Right, "r:a"))]);
    }

    #[test]
    fn one_left_object_propagates() {
        let mut b = KbPairBuilder::new();
        // Two parents match by value; each has exactly one (value-less)
        // child; the first pair's children seed the relation alignment is
        // bootstrapped via a second matched pair of children.
        for i in 0..2 {
            b.add_triple(Side::Left, &format!("l:p{i}"), "l:label", Term::Literal(&format!("parent number {i} shared tokens")));
            b.add_triple(Side::Left, &format!("l:p{i}"), "l:child", Term::Uri(&format!("l:c{i}")));
            b.add_triple(Side::Right, &format!("r:p{i}"), "r:name", Term::Literal(&format!("parent number {i} shared tokens")));
            b.add_triple(Side::Right, &format!("r:p{i}"), "r:kid", Term::Uri(&format!("r:c{i}")));
        }
        // c0 matches by value (bootstraps l:child ↔ r:kid alignment);
        // c1 has no value overlap and is reachable only via one-left-object.
        b.add_triple(Side::Left, "l:c0", "l:label", Term::Literal("identical child zero"));
        b.add_triple(Side::Right, "r:c0", "r:name", Term::Literal("identical child zero"));
        b.add_triple(Side::Left, "l:c1", "l:label", Term::Literal("opaque"));
        b.add_triple(Side::Right, "r:c1", "r:name", Term::Literal("different"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let matches = run_rimom(&exec, &pair, &RimomConfig::default());
        let c1 = (eid(&pair, Side::Left, "l:c1"), eid(&pair, Side::Right, "r:c1"));
        assert!(matches.contains(&c1), "one-left-object must recover the opaque child: {matches:?}");
    }

    #[test]
    fn top_tokens_prefers_rare() {
        let mut b = KbPairBuilder::new();
        for i in 0..5 {
            b.add_triple(Side::Left, &format!("l{i}"), "p", Term::Literal("common filler"));
        }
        b.add_triple(Side::Left, "l9", "p", Term::Literal("common filler rareword"));
        b.add_triple(Side::Right, "r", "q", Term::Literal("x"));
        let pair = b.finish();
        let ef = TokenEf::compute(&pair);
        let tops = top_tokens(&pair, &ef, Side::Left, 1);
        let l9_top = tops[5][0];
        assert_eq!(pair.tokens().resolve(minoaner_kb::Symbol(l9_top.0)), "rareword");
    }

    #[test]
    fn empty_kb_is_fine() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l", "p", Term::Literal("x"));
        let pair = b.finish();
        let exec = Executor::new(1);
        assert!(run_rimom(&exec, &pair, &RimomConfig::default()).is_empty());
    }
}
