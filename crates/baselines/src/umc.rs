//! Unique Mapping Clustering — the match-selection procedure shared by
//! SiGMa, LINDA, RiMOM and MinoanER (§5 of the paper): scored pairs enter
//! a queue in decreasing similarity; the top pair is accepted iff neither
//! endpoint is already matched; the process stops at a similarity
//! threshold `t`.

use minoaner_kb::EntityId;

/// Runs unique mapping clustering over `(left, right, score)` pairs.
///
/// Pairs are processed in decreasing score order (ties broken by ids for
/// determinism); pairs scoring below `threshold` are ignored. Returns the
/// accepted matches in acceptance order.
pub fn unique_mapping_clustering(
    mut pairs: Vec<(EntityId, EntityId, f64)>,
    threshold: f64,
) -> Vec<(EntityId, EntityId)> {
    pairs.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut left_taken = minoaner_det::DetHashSet::default();
    let mut right_taken = minoaner_det::DetHashSet::default();
    let mut out = Vec::new();
    for (l, r, s) in pairs {
        if s < threshold {
            break;
        }
        if left_taken.contains(&l) || right_taken.contains(&r) {
            continue;
        }
        left_taken.insert(l);
        right_taken.insert(r);
        out.push((l, r));
    }
    out
}

/// Prefix-evaluation support: runs UMC once with no threshold and returns
/// each accepted match with its score, so that the result for *any*
/// threshold `t` is the prefix with score ≥ `t`. Used by the BSL grid
/// search to sweep 20 thresholds at the cost of one pass.
pub fn unique_mapping_prefix(
    mut pairs: Vec<(EntityId, EntityId, f64)>,
) -> Vec<(EntityId, EntityId, f64)> {
    pairs.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut left_taken = minoaner_det::DetHashSet::default();
    let mut right_taken = minoaner_det::DetHashSet::default();
    let mut out = Vec::new();
    for (l, r, s) in pairs {
        if left_taken.contains(&l) || right_taken.contains(&r) {
            continue;
        }
        left_taken.insert(l);
        right_taken.insert(r);
        out.push((l, r, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn takes_best_pair_per_entity() {
        let pairs = vec![(e(0), e(0), 0.9), (e(0), e(1), 0.8), (e(1), e(0), 0.7), (e(1), e(1), 0.6)];
        let m = unique_mapping_clustering(pairs, 0.0);
        assert_eq!(m, vec![(e(0), e(0)), (e(1), e(1))]);
    }

    #[test]
    fn threshold_cuts_low_scores() {
        let pairs = vec![(e(0), e(0), 0.9), (e(1), e(1), 0.3)];
        let m = unique_mapping_clustering(pairs, 0.5);
        assert_eq!(m, vec![(e(0), e(0))]);
    }

    #[test]
    fn greedy_conflict_resolution() {
        // e1-left's best is taken by a stronger pair; e1 stays unmatched
        // for that partner but can take another.
        let pairs = vec![(e(0), e(5), 1.0), (e(1), e(5), 0.9), (e(1), e(6), 0.5)];
        let m = unique_mapping_clustering(pairs, 0.0);
        assert_eq!(m, vec![(e(0), e(5)), (e(1), e(6))]);
    }

    #[test]
    fn prefix_matches_thresholded_runs() {
        let pairs = vec![
            (e(0), e(0), 0.9),
            (e(1), e(1), 0.7),
            (e(2), e(2), 0.4),
            (e(0), e(2), 0.95), // conflicts with (0,0)
        ];
        let prefix = unique_mapping_prefix(pairs.clone());
        for t in [0.0, 0.5, 0.8, 1.0] {
            let direct = unique_mapping_clustering(pairs.clone(), t);
            let via_prefix: Vec<_> =
                prefix.iter().filter(|&&(_, _, s)| s >= t).map(|&(l, r, _)| (l, r)).collect();
            assert_eq!(direct, via_prefix, "threshold {t}");
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let pairs = vec![(e(1), e(1), 0.5), (e(0), e(0), 0.5)];
        let m = unique_mapping_clustering(pairs, 0.0);
        assert_eq!(m, vec![(e(0), e(0)), (e(1), e(1))]);
    }

    #[test]
    fn empty_input() {
        assert!(unique_mapping_clustering(vec![], 0.0).is_empty());
    }
}
