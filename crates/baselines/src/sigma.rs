//! A SiGMa-style greedy matcher (Lacoste-Julien et al., KDD 2013): seed
//! matches with identical names, then greedily propagate along *aligned
//! relations* — every accepted match boosts the score of its compatible
//! neighbor pairs, which enter a priority queue resolved with unique
//! mapping and a score threshold.
//!
//! Faithful points: identical-name seeds, candidates restricted to pairs
//! with at least two common tokens (§5 of the MinoanER paper notes this
//! about SiGMa), value similarity as normalized weighted Jaccard,
//! data-driven iteration until the queue drains. Simplification: relation
//! alignment is recomputed per round from the current match set instead
//! of incrementally, and scores update per round rather than per
//! acceptance. As in the original, the *alignment of relations is
//! assumed learnable from matched pairs* — an assumption MinoanER
//! deliberately avoids.

use minoaner_det::{DetHashMap, DetHashSet};

use minoaner_dataflow::Executor;
use minoaner_kb::stats::{NameStats, TokenEf};
use minoaner_kb::{AttrId, EntityId, KbPair, Side};

use crate::umc::unique_mapping_clustering;

/// SiGMa configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaConfig {
    /// Acceptance threshold on the combined score.
    pub threshold: f64,
    /// Weight of neighbor evidence relative to value similarity.
    pub neighbor_weight: f64,
    /// Candidate pairs must share at least this many tokens.
    pub min_shared_tokens: usize,
    /// Maximum propagation rounds (the queue usually drains earlier).
    pub max_rounds: usize,
    /// Name attributes per KB used for seeding.
    pub name_attrs: usize,
}

impl Default for SigmaConfig {
    fn default() -> Self {
        Self {
            threshold: 0.2,
            neighbor_weight: 0.5,
            min_shared_tokens: 2,
            max_rounds: 10,
            name_attrs: 2,
        }
    }
}

/// Normalized weighted Jaccard over token sets with inverse-EF weights.
fn value_similarity(pair: &KbPair, ef: &TokenEf, l: EntityId, r: EntityId) -> f64 {
    let a = pair.kb(Side::Left).tokens_of(l);
    let b = pair.kb(Side::Right).tokens_of(r);
    let (mut i, mut j) = (0, 0);
    let (mut inter, mut union) = (0.0, 0.0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                union += ef.token_weight_clamped(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += ef.token_weight_clamped(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let w = ef.token_weight(a[i]);
                inter += w;
                union += w;
                i += 1;
                j += 1;
            }
        }
    }
    for &t in &a[i..] {
        union += ef.token_weight_clamped(t);
    }
    for &t in &b[j..] {
        union += ef.token_weight_clamped(t);
    }
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

fn shared_token_count(pair: &KbPair, l: EntityId, r: EntityId) -> usize {
    let a = pair.kb(Side::Left).tokens_of(l);
    let b = pair.kb(Side::Right).tokens_of(r);
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Runs SiGMa-style matching.
pub fn run_sigma(executor: &Executor, pair: &KbPair, cfg: &SigmaConfig) -> Vec<(EntityId, EntityId)> {
    let ef = executor.time_stage("sigma/ef", || TokenEf::compute(pair));

    // --- Seeds: unique identical names ---
    let names = NameStats::compute(pair, cfg.name_attrs);
    let name_blocks = minoaner_blocking::name::build_name_blocks(pair, &names);
    let seeds = minoaner_blocking::name::alpha_pairs(&name_blocks);

    let mut matched_l: DetHashMap<EntityId, EntityId> = DetHashMap::default();
    let mut matched_r: DetHashMap<EntityId, EntityId> = DetHashMap::default();
    for &(l, r) in &seeds {
        if !matched_l.contains_key(&l) && !matched_r.contains_key(&r) {
            matched_l.insert(l, r);
            matched_r.insert(r, l);
        }
    }

    // In-edge lists (child → [(relation, parent)]) so propagation works in
    // both directions: a matched child promotes its parents too.
    let in_edges = |side: Side| -> Vec<Vec<(AttrId, EntityId)>> {
        let kb = pair.kb(side);
        let mut rev: Vec<Vec<(AttrId, EntityId)>> = vec![Vec::new(); kb.len()];
        for (x, e) in kb.iter() {
            for (r, t) in e.relation_pairs() {
                rev[t.index()].push((r, x));
            }
        }
        rev
    };
    let in_l = in_edges(Side::Left);
    let in_r = in_edges(Side::Right);

    // --- Greedy propagation rounds ---
    for round in 0..cfg.max_rounds {
        let added = executor.time_stage(&format!("sigma/round-{round}"), || {
            // Relation alignment from the current match set.
            let mut align: DetHashMap<(AttrId, AttrId), u64> = DetHashMap::default();
            for (&l, &r) in &matched_l {
                for (rl, nl) in pair.kb(Side::Left).entity(l).relation_pairs() {
                    if let Some(&mr) = matched_l.get(&nl) {
                        for (rr, nr) in pair.kb(Side::Right).entity(r).relation_pairs() {
                            if nr == mr {
                                *align.entry((rl, rr)).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }

            // Frontier: unmatched neighbor pairs of current matches, in
            // both edge directions.
            let mut frontier: DetHashSet<(EntityId, EntityId)> = DetHashSet::default();
            for (&l, &r) in &matched_l {
                for (rl, nl) in pair.kb(Side::Left).entity(l).relation_pairs() {
                    if matched_l.contains_key(&nl) {
                        continue;
                    }
                    for (rr, nr) in pair.kb(Side::Right).entity(r).relation_pairs() {
                        if matched_r.contains_key(&nr) {
                            continue;
                        }
                        if align.get(&(rl, rr)).copied().unwrap_or(0) > 0 || round == 0 {
                            frontier.insert((nl, nr));
                        }
                    }
                }
                for &(rl, pl) in &in_l[l.index()] {
                    if matched_l.contains_key(&pl) {
                        continue;
                    }
                    for &(rr, pr) in &in_r[r.index()] {
                        if matched_r.contains_key(&pr) {
                            continue;
                        }
                        if align.get(&(rl, rr)).copied().unwrap_or(0) > 0 || round == 0 {
                            frontier.insert((pl, pr));
                        }
                    }
                }
            }

            // Score the frontier: value similarity + matched-neighbor bonus.
            let mut scored: Vec<(EntityId, EntityId, f64)> = Vec::new();
            for &(l, r) in &frontier {
                if shared_token_count(pair, l, r) < cfg.min_shared_tokens {
                    continue;
                }
                let v = value_similarity(pair, &ef, l, r);
                let mut matched_nbrs = 0usize;
                let mut total_nbrs = 0usize;
                for (_, nl) in pair.kb(Side::Left).entity(l).relation_pairs() {
                    total_nbrs += 1;
                    if let Some(&mr) = matched_l.get(&nl) {
                        if pair.kb(Side::Right).entity(r).relation_pairs().any(|(_, nr)| nr == mr) {
                            matched_nbrs += 1;
                        }
                    }
                }
                let nbr = if total_nbrs == 0 { 0.0 } else { matched_nbrs as f64 / total_nbrs as f64 };
                let score = v + cfg.neighbor_weight * nbr;
                if score >= cfg.threshold {
                    scored.push((l, r, score));
                }
            }

            let accepted = unique_mapping_clustering(scored, cfg.threshold);
            let mut added = 0;
            for (l, r) in accepted {
                if !matched_l.contains_key(&l) && !matched_r.contains_key(&r) {
                    matched_l.insert(l, r);
                    matched_r.insert(r, l);
                    added += 1;
                }
            }
            added
        });
        if added == 0 {
            break;
        }
    }

    let mut out: Vec<(EntityId, EntityId)> = matched_l.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoaner_kb::{KbPairBuilder, Term};

    fn eid(pair: &KbPair, side: Side, uri: &str) -> EntityId {
        pair.kb(side).entity_by_uri(pair.uris().get(uri).unwrap()).unwrap()
    }

    /// Seeded chef propagates to the restaurant via the aligned relation.
    #[test]
    fn propagates_from_name_seeds_to_neighbors() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:rest", "l:label", Term::Literal("fancy eatery bray berkshire"));
        b.add_triple(Side::Left, "l:rest", "l:hasChef", Term::Uri("l:chef"));
        b.add_triple(Side::Left, "l:chef", "l:label", Term::Literal("jonny lake"));
        b.add_triple(Side::Right, "r:rest", "r:name", Term::Literal("fancy eatery in bray"));
        b.add_triple(Side::Right, "r:rest", "r:headChef", Term::Uri("r:chef"));
        b.add_triple(Side::Right, "r:chef", "r:name", Term::Literal("jonny lake"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let matches = run_sigma(&exec, &pair, &SigmaConfig::default());
        let chef = (eid(&pair, Side::Left, "l:chef"), eid(&pair, Side::Right, "r:chef"));
        let rest = (eid(&pair, Side::Left, "l:rest"), eid(&pair, Side::Right, "r:rest"));
        assert!(matches.contains(&chef), "seed by identical name");
        assert!(matches.contains(&rest), "propagated via aligned relation");
    }

    #[test]
    fn min_shared_tokens_gates_candidates() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l:a", "l:label", Term::Literal("anchor name"));
        b.add_triple(Side::Left, "l:a", "l:rel", Term::Uri("l:b"));
        b.add_triple(Side::Left, "l:b", "l:label", Term::Literal("solitary"));
        b.add_triple(Side::Right, "r:a", "r:name", Term::Literal("anchor name"));
        b.add_triple(Side::Right, "r:a", "r:rel", Term::Uri("r:b"));
        b.add_triple(Side::Right, "r:b", "r:name", Term::Literal("solitary"));
        let pair = b.finish();
        let exec = Executor::new(1);
        // l:b / r:b share only one token → below the 2-token gate.
        let matches = run_sigma(&exec, &pair, &SigmaConfig::default());
        let b_pair = (eid(&pair, Side::Left, "l:b"), eid(&pair, Side::Right, "r:b"));
        // They are still matched — but only because the *name seed* covers
        // them (identical unique name), not via the value path.
        assert!(matches.contains(&b_pair));
        // With seeds disabled via distinct names, the gate applies.
        let mut b2 = KbPairBuilder::new();
        b2.add_triple(Side::Left, "l:x", "l:label", Term::Literal("left only"));
        b2.add_triple(Side::Right, "r:x", "r:name", Term::Literal("right unrelated"));
        let pair2 = b2.finish();
        let matches2 = run_sigma(&exec, &pair2, &SigmaConfig::default());
        assert!(matches2.is_empty());
    }

    #[test]
    fn value_similarity_is_normalized() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l", "p", Term::Literal("a b"));
        b.add_triple(Side::Right, "r", "q", Term::Literal("a b"));
        let pair = b.finish();
        let ef = TokenEf::compute(&pair);
        let l = eid(&pair, Side::Left, "l");
        let r = eid(&pair, Side::Right, "r");
        let v = value_similarity(&pair, &ef, l, r);
        assert!((v - 1.0).abs() < 1e-12, "identical token sets → 1.0, got {v}");
    }

    #[test]
    fn terminates_when_nothing_new() {
        let mut b = KbPairBuilder::new();
        b.add_triple(Side::Left, "l", "p", Term::Literal("isolated left"));
        b.add_triple(Side::Right, "r", "q", Term::Literal("other right"));
        let pair = b.finish();
        let exec = Executor::new(1);
        let matches = run_sigma(&exec, &pair, &SigmaConfig { max_rounds: 1000, ..Default::default() });
        assert!(matches.is_empty());
    }
}
