//! BSL — the paper's heavily fine-tuned baseline (§6, "Baselines"): a
//! value-only matcher that scores every candidate pair of the (unpruned)
//! blocking evidence with a classic string-similarity configuration and
//! resolves matches with Unique Mapping Clustering. Its four parameters
//! are grid-searched against the ground truth, exactly as in the paper:
//!
//! * token n-grams, `n ∈ {1, 2, 3}`;
//! * TF or TF-IDF weights;
//! * Cosine, Jaccard, Generalized Jaccard, or SiGMa similarity (the SiGMa
//!   measure applies only to TF-IDF weights \[21\]);
//! * similarity threshold in `[0, 1)` with step 0.05.
//!
//! That is 3 × (3 × 2 + 1) = 21 scoring configurations × 20 thresholds =
//! **420 configurations**, of which the best F1 is reported.
//!
//! Unlike MinoanER, BSL uses no neighbor evidence — which is exactly why
//! it collapses on the low-value-similarity datasets (Table 3).

use minoaner_det::{DetHashMap, DetHashSet};
use std::hash::{Hash, Hasher};

use minoaner_blocking::{NameBlocks, TokenBlocks};
use minoaner_dataflow::Executor;
use minoaner_kb::{EntityId, KbPair, Side};
use serde::{Deserialize, Serialize};

use crate::umc::unique_mapping_prefix;

/// Token weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    Tf,
    TfIdf,
}

/// Similarity measure over weighted n-gram profiles (all normalized to
/// `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Measure {
    Cosine,
    Jaccard,
    GeneralizedJaccard,
    /// The SiGMa weighted-Dice measure \[21\]: `Σ_{g∈A∩B}(w_A(g)+w_B(g)) /
    /// (Σ_A w + Σ_B w)`; defined for TF-IDF weights only.
    Sigma,
}

/// One point of the BSL grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BslConfig {
    pub ngram: usize,
    pub weighting: Weighting,
    pub measure: Measure,
    pub threshold: f64,
}

/// Result of the grid search.
#[derive(Debug, Clone)]
pub struct BslReport {
    /// The F1-maximizing configuration.
    pub best: BslConfig,
    /// Its matches.
    pub matches: Vec<(EntityId, EntityId)>,
    /// Its precision / recall / F1 (percent).
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Number of grid points evaluated (420 in the paper's setup).
    pub evaluated: usize,
    /// Number of candidate pairs scored.
    pub candidates: usize,
}

/// Collects the distinct candidate pairs suggested by the token and name
/// blocks (the value/name disjuncts of the blocking scheme — the inputs
/// BSL scores).
pub fn candidate_pairs(token_blocks: &TokenBlocks, name_blocks: &NameBlocks) -> Vec<(EntityId, EntityId)> {
    let mut seen: DetHashSet<(u32, u32)> = DetHashSet::default();
    for (_, b) in &token_blocks.blocks {
        for &l in &b.left {
            for &r in &b.right {
                seen.insert((l.0, r.0));
            }
        }
    }
    for (_, b) in &name_blocks.blocks {
        for &l in &b.left {
            for &r in &b.right {
                seen.insert((l.0, r.0));
            }
        }
    }
    let mut out: Vec<(EntityId, EntityId)> =
        seen.into_iter().map(|(l, r)| (EntityId(l), EntityId(r))).collect();
    out.sort_unstable();
    out
}

/// A sparse weighted n-gram profile, sorted by gram id.
type Profile = Vec<(u64, f64)>;

fn gram_hash(window: &[minoaner_kb::TokenId]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for t in window {
        t.0.hash(&mut h);
    }
    h.finish()
}

/// Builds raw term-frequency profiles of token `n`-grams for one side.
/// N-grams are taken within each literal value (they never span values).
fn tf_profiles(pair: &KbPair, side: Side, n: usize) -> Vec<Vec<(u64, u32)>> {
    let kb = pair.kb(side);
    let mut out = Vec::with_capacity(kb.len());
    for (_, e) in kb.iter() {
        let mut counts: DetHashMap<u64, u32> = DetHashMap::default();
        for (_, lit) in e.literal_pairs() {
            let seq = pair.literal_token_seq(lit);
            if seq.len() >= n {
                for w in seq.windows(n) {
                    *counts.entry(gram_hash(w)).or_insert(0) += 1;
                }
            }
        }
        let mut profile: Vec<(u64, u32)> = counts.into_iter().collect();
        profile.sort_unstable_by_key(|&(g, _)| g);
        out.push(profile);
    }
    out
}

fn weighted(
    tf: &[Vec<(u64, u32)>],
    weighting: Weighting,
    df: &DetHashMap<u64, u32>,
    corpus_size: f64,
) -> Vec<Profile> {
    tf.iter()
        .map(|p| {
            p.iter()
                .map(|&(g, c)| {
                    let w = match weighting {
                        Weighting::Tf => c as f64,
                        Weighting::TfIdf => {
                            c as f64 * (corpus_size / f64::from(df[&g])).ln().max(0.0)
                        }
                    };
                    (g, w)
                })
                .collect()
        })
        .collect()
}

/// Pair statistics from one merge pass over two sorted profiles.
struct PairStats {
    dot: f64,
    min_sum: f64,
    shared: usize,
    shared_weight: f64,
}

fn merge_stats(a: &Profile, b: &Profile) -> PairStats {
    let (mut i, mut j) = (0, 0);
    let mut s = PairStats { dot: 0.0, min_sum: 0.0, shared: 0, shared_weight: 0.0 };
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (wa, wb) = (a[i].1, b[j].1);
                s.dot += wa * wb;
                s.min_sum += wa.min(wb);
                s.shared += 1;
                s.shared_weight += wa + wb;
                i += 1;
                j += 1;
            }
        }
    }
    s
}

struct SideAggregates {
    norm: Vec<f64>,
    weight_sum: Vec<f64>,
    set_size: Vec<usize>,
}

fn aggregates(profiles: &[Profile]) -> SideAggregates {
    SideAggregates {
        norm: profiles.iter().map(|p| p.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()).collect(),
        weight_sum: profiles.iter().map(|p| p.iter().map(|&(_, w)| w).sum()).collect(),
        set_size: profiles.iter().map(Vec::len).collect(),
    }
}

fn f1_counts(matches: &[(EntityId, EntityId)], gt: &DetHashSet<(EntityId, EntityId)>) -> (f64, f64, f64) {
    if matches.is_empty() || gt.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let tp = matches.iter().filter(|p| gt.contains(p)).count() as f64;
    let p = 100.0 * tp / matches.len() as f64;
    let r = 100.0 * tp / gt.len() as f64;
    let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
    (p, r, f1)
}

/// Runs the full 420-point grid search and returns the best configuration,
/// as the paper does for its BSL rows in Table 3.
pub fn grid_search(
    executor: &Executor,
    pair: &KbPair,
    token_blocks: &TokenBlocks,
    name_blocks: &NameBlocks,
    ground_truth: &[(EntityId, EntityId)],
) -> BslReport {
    let candidates = candidate_pairs(token_blocks, name_blocks);
    let gt: DetHashSet<(EntityId, EntityId)> = ground_truth.iter().copied().collect();
    let thresholds: Vec<f64> = (0..20).map(|i| i as f64 * 0.05).collect();

    type Best = Option<(BslConfig, Vec<(EntityId, EntityId)>, (f64, f64, f64))>;
    let mut best: Best = None;
    let mut evaluated = 0;

    for n in 1..=3 {
        let tf_l = tf_profiles(pair, Side::Left, n);
        let tf_r = tf_profiles(pair, Side::Right, n);
        // Document frequency across both KBs.
        let mut df: DetHashMap<u64, u32> = DetHashMap::default();
        for p in tf_l.iter().chain(tf_r.iter()) {
            for &(g, _) in p {
                *df.entry(g).or_insert(0) += 1;
            }
        }
        let corpus = (tf_l.len() + tf_r.len()) as f64;

        for weighting in [Weighting::Tf, Weighting::TfIdf] {
            let wl = weighted(&tf_l, weighting, &df, corpus);
            let wr = weighted(&tf_r, weighting, &df, corpus);
            let agg_l = aggregates(&wl);
            let agg_r = aggregates(&wr);

            // One parallel pass computes every measure for every candidate.
            let chunk = candidates.len().div_ceil(executor.partitions().max(1)).max(1);
            let n_tasks = candidates.len().div_ceil(chunk);
            let per_measure: Vec<Vec<Vec<(EntityId, EntityId, f64)>>> = executor.run_stage(
                &format!("bsl/sims/n{n}/{weighting:?}"),
                n_tasks,
                |t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(candidates.len());
                    let mut cos = Vec::new();
                    let mut jac = Vec::new();
                    let mut gen = Vec::new();
                    let mut sig = Vec::new();
                    for &(l, r) in &candidates[lo..hi] {
                        let (pl, pr) = (&wl[l.index()], &wr[r.index()]);
                        if pl.is_empty() || pr.is_empty() {
                            continue;
                        }
                        let s = merge_stats(pl, pr);
                        if s.shared == 0 {
                            continue;
                        }
                        let (nl, nr) = (agg_l.norm[l.index()], agg_r.norm[r.index()]);
                        if nl > 0.0 && nr > 0.0 {
                            cos.push((l, r, s.dot / (nl * nr)));
                        }
                        let union = agg_l.set_size[l.index()] + agg_r.set_size[r.index()] - s.shared;
                        jac.push((l, r, s.shared as f64 / union.max(1) as f64));
                        let (swl, swr) = (agg_l.weight_sum[l.index()], agg_r.weight_sum[r.index()]);
                        let max_sum = swl + swr - s.min_sum;
                        if max_sum > 0.0 {
                            gen.push((l, r, s.min_sum / max_sum));
                        }
                        if weighting == Weighting::TfIdf && swl + swr > 0.0 {
                            sig.push((l, r, s.shared_weight / (swl + swr)));
                        }
                    }
                    vec![cos, jac, gen, sig]
                },
            );

            let mut merged: [Vec<(EntityId, EntityId, f64)>; 4] = Default::default();
            for task in per_measure {
                for (m, sims) in task.into_iter().enumerate() {
                    merged[m].extend(sims);
                }
            }

            let measures: &[Measure] = if weighting == Weighting::TfIdf {
                &[Measure::Cosine, Measure::Jaccard, Measure::GeneralizedJaccard, Measure::Sigma]
            } else {
                &[Measure::Cosine, Measure::Jaccard, Measure::GeneralizedJaccard]
            };
            for (m, &measure) in measures.iter().enumerate() {
                let prefix = unique_mapping_prefix(std::mem::take(&mut merged[m]));
                for &threshold in &thresholds {
                    evaluated += 1;
                    let cut = prefix.partition_point(|&(_, _, s)| s >= threshold);
                    let matches: Vec<(EntityId, EntityId)> =
                        prefix[..cut].iter().map(|&(l, r, _)| (l, r)).collect();
                    let (p, r, f1) = f1_counts(&matches, &gt);
                    let better = best.as_ref().map(|(_, _, (_, _, bf))| f1 > *bf).unwrap_or(true);
                    if better {
                        best = Some((
                            BslConfig { ngram: n, weighting, measure, threshold },
                            matches,
                            (p, r, f1),
                        ));
                    }
                }
            }
        }
    }

    // The static grid always evaluates at least one configuration; if it
    // ever shrank to nothing, degrade to an empty report instead of
    // panicking mid-experiment.
    let Some((config, matches, (precision, recall, f1))) = best else {
        return BslReport {
            best: BslConfig {
                ngram: 0,
                weighting: Weighting::TfIdf,
                measure: Measure::Cosine,
                threshold: 0.0,
            },
            matches: Vec::new(),
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            evaluated,
            candidates: candidates.len(),
        };
    };
    BslReport {
        best: config,
        matches,
        precision,
        recall,
        f1,
        evaluated,
        candidates: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoaner_blocking::name::build_name_blocks;
    use minoaner_blocking::token::build_token_blocks;
    use minoaner_kb::stats::NameStats;
    use minoaner_kb::{KbPairBuilder, Term};

    fn small_pair() -> (KbPair, Vec<(EntityId, EntityId)>) {
        let mut b = KbPairBuilder::new();
        let rows = [
            ("fatduck", "the fat duck bray michelin"),
            ("noma", "noma copenhagen nordic rene"),
            ("elbulli", "el bulli roses catalonia"),
        ];
        for (id, text) in rows {
            b.add_triple(Side::Left, &format!("l:{id}"), "p", Term::Literal(text));
            b.add_triple(Side::Right, &format!("r:{id}"), "q", Term::Literal(text));
        }
        let pair = b.finish();
        let gt = rows
            .iter()
            .map(|(id, _)| {
                let l = pair.kb(Side::Left).entity_by_uri(pair.uris().get(&format!("l:{id}")).unwrap()).unwrap();
                let r = pair.kb(Side::Right).entity_by_uri(pair.uris().get(&format!("r:{id}")).unwrap()).unwrap();
                (l, r)
            })
            .collect();
        (pair, gt)
    }

    #[test]
    fn candidate_pairs_dedup_across_blocks() {
        let (pair, _) = small_pair();
        let tb = build_token_blocks(&pair);
        let names = NameStats::compute(&pair, 1);
        let nb = build_name_blocks(&pair, &names);
        let cands = candidate_pairs(&tb, &nb);
        let set: DetHashSet<_> = cands.iter().collect();
        assert_eq!(set.len(), cands.len(), "no duplicates");
        assert!(cands.len() >= 3, "at least the identical pairs co-occur");
    }

    #[test]
    fn grid_search_is_perfect_on_identical_kbs() {
        let (pair, gt) = small_pair();
        let tb = build_token_blocks(&pair);
        let names = NameStats::compute(&pair, 1);
        let nb = build_name_blocks(&pair, &names);
        let exec = Executor::new(2);
        let report = grid_search(&exec, &pair, &tb, &nb, &gt);
        assert_eq!(report.f1, 100.0);
        assert_eq!(report.evaluated, 420, "the paper's 420-configuration grid");
        assert_eq!(report.matches.len(), 3);
    }

    #[test]
    fn ngram_profiles_respect_value_boundaries() {
        let mut b = KbPairBuilder::new();
        // "a b" and "b c" in separate values: bigram "b c" of the left
        // entity must NOT appear (ngrams don't span values).
        let e = b.entity(Side::Left, "l");
        b.add_pair(Side::Left, e, "p", Term::Literal("a b"));
        b.add_pair(Side::Left, e, "p", Term::Literal("c d"));
        b.add_triple(Side::Right, "r", "q", Term::Literal("b c"));
        let pair = b.finish();
        let left = tf_profiles(&pair, Side::Left, 2);
        let right = tf_profiles(&pair, Side::Right, 2);
        let shared = merge_stats(
            &left[0].iter().map(|&(g, c)| (g, c as f64)).collect::<Vec<_>>(),
            &right[0].iter().map(|&(g, c)| (g, c as f64)).collect::<Vec<_>>(),
        );
        assert_eq!(shared.shared, 0);
    }

    #[test]
    fn merge_stats_computes_expected_values() {
        let a: Profile = vec![(1, 2.0), (2, 1.0), (5, 3.0)];
        let b: Profile = vec![(2, 4.0), (5, 1.0), (9, 2.0)];
        let s = merge_stats(&a, &b);
        assert_eq!(s.shared, 2);
        assert!((s.dot - (1.0 * 4.0 + 3.0 * 1.0)).abs() < 1e-12);
        assert!((s.min_sum - (1.0 + 1.0)).abs() < 1e-12);
        assert!((s.shared_weight - (1.0 + 4.0 + 3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn tfidf_downweights_ubiquitous_grams() {
        let mut b = KbPairBuilder::new();
        for i in 0..4 {
            b.add_triple(Side::Left, &format!("l{i}"), "p", Term::Literal("common"));
        }
        b.add_triple(Side::Left, "l9", "p", Term::Literal("common rare"));
        b.add_triple(Side::Right, "r", "p", Term::Literal("common rare"));
        let pair = b.finish();
        let tf = tf_profiles(&pair, Side::Left, 1);
        let mut df: DetHashMap<u64, u32> = DetHashMap::default();
        for p in tf.iter().chain(tf_profiles(&pair, Side::Right, 1).iter()) {
            for &(g, _) in p {
                *df.entry(g).or_insert(0) += 1;
            }
        }
        let w = weighted(&tf, Weighting::TfIdf, &df, 6.0);
        // l9's profile: "common" (df 7) ≈ 0 weight, "rare" (df 2) > 0.
        let l9 = &w[4];
        let weights: Vec<f64> = l9.iter().map(|&(_, w)| w).collect();
        assert!(weights.iter().any(|&x| x > 0.5));
        assert!(weights.iter().any(|&x| x < 0.1));
    }
}
