//! A minimal Rust lexer sufficient for rule matching.
//!
//! The container this repo builds in has no network access, so `syn` is
//! unavailable; the rules instead run over a token stream produced here.
//! The lexer understands exactly the constructs that would otherwise cause
//! false positives in a grep: line comments, (nested) block comments,
//! string / raw-string / byte-string / char literals, and lifetimes. It
//! coalesces the two-character operators the rules care about (`::`, `+=`,
//! and friends) so rule patterns can match them as single tokens.

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Str,
    Char,
    Num,
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

const TWO_CHAR_OPS: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "..",
    "<<", ">>",
];

pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |s: &[u8]| s.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let b = bytes[i];

        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (covers `//`, `///`, `//!`).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }

        // Block comment, nesting-aware.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            let mut depth = 1;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&bytes[start..i]);
            continue;
        }

        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if matches!(b, b'r' | b'b') {
            if let Some(end) = try_raw_or_byte_string(bytes, i) {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                line += count_lines(&bytes[i..end]);
                i = end;
                continue;
            }
        }

        // Plain string.
        if b == b'"' {
            let start = i;
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            line += count_lines(&bytes[start..i.min(bytes.len())]);
            continue;
        }

        // Char literal vs. lifetime.
        if b == b'\'' {
            if let Some(end) = try_char_literal(bytes, i) {
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = end;
            } else {
                // Lifetime: consume the quote plus the identifier.
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            continue;
        }

        // Number (rough: suffixes, underscores, exponents all swallowed).
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || (bytes[i] == b'.'
                        && i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // Identifier / keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // Punctuation, coalescing known two-char operators.
        if i + 1 < bytes.len() {
            let pair = &src[i..i + 2];
            if TWO_CHAR_OPS.contains(&pair) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair.to_string(),
                    line,
                });
                i += 2;
                continue;
            }
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: (b as char).to_string(),
            line,
        });
        i += 1;
    }

    toks
}

/// If position `i` starts a raw or byte string literal, return the index
/// one past its end. `i` must point at `r` or `b`.
fn try_raw_or_byte_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    // Prefix: r, b, br, rb.
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'r' {
            j += 1;
        }
    } else {
        j += 1; // the 'r'
    }

    let raw = bytes[i] == b'r' || (bytes[i] == b'b' && j > i + 1);
    if raw {
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` `#`s.
        while j < bytes.len() {
            if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(bytes.len())
    } else {
        // b"...": plain byte string with escapes.
        if j >= bytes.len() || bytes[j] != b'"' {
            return None;
        }
        j += 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        Some(bytes.len())
    }
}

/// If position `i` (pointing at `'`) starts a char literal (not a
/// lifetime), return the index one past the closing quote.
fn try_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut k = j + 2;
        while k < bytes.len() && bytes[k] != b'\'' {
            k += 1;
        }
        return (k < bytes.len()).then_some(k + 1);
    }
    // `'x'` is a char; `'x` followed by anything else is a lifetime.
    if j + 1 < bytes.len() && bytes[j] != b'\'' && bytes[j + 1] == b'\'' {
        // Multi-byte UTF-8 chars: bytes[j] may be a continuation start, fine.
        return Some(j + 2);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r####"
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let real = DetHashMap::default();
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"DetHashMap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn two_char_ops_coalesce() {
        let toks = lex("total += x; let y = a::b;");
        assert!(toks.iter().any(|t| t.is_punct("+=")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "/* a\nb\nc */\nfoo";
        let toks = lex(src);
        assert_eq!(toks[0].text, "foo");
        assert_eq!(toks[0].line, 4);
    }
}
