//! `lint-allow.toml` — the checked-in, ratcheted allowlist.
//!
//! Two entry shapes:
//!
//! ```toml
//! # Blanket: every violation of `rule` in `path` is accepted (R1 in the
//! # det wrapper itself, R3 in timing modules). `reason` is mandatory.
//! [[allow]]
//! path = "crates/det/src/lib.rs"
//! rule = "R1"
//! reason = "the deterministic wrapper is built on std HashMap"
//!
//! # Ratcheted: exactly `count` violations are accepted. More fails the
//! # build; fewer also fails, with a message telling you to lower the
//! # count — the list can only shrink.
//! [[allow]]
//! path = "crates/kb/src/store.rs"
//! rule = "R4"
//! count = 3
//! reason = "infallible by construction: ids come from the interner"
//! ```
//!
//! Parsed by hand (TOML subset) because the lint crate must build with
//! zero dependencies.

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub path: String,
    pub rule: String,
    pub count: Option<usize>,
    pub reason: String,
    pub line: u32,
}

pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                finish(e, &mut entries)?;
            }
            current = Some(AllowEntry {
                path: String::new(),
                rule: String::new(),
                count: None,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint-allow.toml:{lineno}: expected `key = value`, got `{line}`"));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "lint-allow.toml:{lineno}: `{}` outside of a [[allow]] entry",
                key.trim()
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "path" => entry.path = unquote(value, lineno)?,
            "rule" => entry.rule = unquote(value, lineno)?,
            "reason" => entry.reason = unquote(value, lineno)?,
            "count" => {
                entry.count = Some(value.parse::<usize>().map_err(|_| {
                    format!("lint-allow.toml:{lineno}: count must be an integer, got `{value}`")
                })?);
            }
            _ => return Err(format!("lint-allow.toml:{lineno}: unknown key `{key}`")),
        }
    }
    if let Some(e) = current.take() {
        finish(e, &mut entries)?;
    }
    Ok(entries)
}

fn finish(e: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    if e.path.is_empty() || e.rule.is_empty() {
        return Err(format!(
            "lint-allow.toml:{}: entry needs both `path` and `rule`",
            e.line
        ));
    }
    if e.reason.is_empty() {
        return Err(format!(
            "lint-allow.toml:{}: entry for {} {} needs a `reason`",
            e.line, e.path, e.rule
        ));
    }
    if e.count == Some(0) {
        return Err(format!(
            "lint-allow.toml:{}: count = 0 — delete the entry instead",
            e.line
        ));
    }
    if entries.iter().any(|x| x.path == e.path && x.rule == e.rule) {
        return Err(format!(
            "lint-allow.toml:{}: duplicate entry for {} {}",
            e.line, e.path, e.rule
        ));
    }
    entries.push(e);
    Ok(())
}

fn unquote(value: &str, lineno: u32) -> Result<String, String> {
    let v = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("lint-allow.toml:{lineno}: expected a quoted string, got `{value}`"))?;
    Ok(v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_blanket_and_ratcheted_entries() {
        let src = r#"
# comment
[[allow]]
path = "crates/det/src/lib.rs"
rule = "R1"
reason = "wrapper"

[[allow]]
path = "crates/kb/src/store.rs"
rule = "R4"
count = 3
reason = "interner ids"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].count, None);
        assert_eq!(entries[1].count, Some(3));
    }

    #[test]
    fn rejects_zero_count_missing_reason_and_duplicates() {
        assert!(parse("[[allow]]\npath = \"a\"\nrule = \"R4\"\ncount = 0\nreason = \"x\"")
            .is_err());
        assert!(parse("[[allow]]\npath = \"a\"\nrule = \"R4\"\ncount = 1").is_err());
        let dup = "[[allow]]\npath = \"a\"\nrule = \"R4\"\ncount = 1\nreason = \"x\"\n\
                   [[allow]]\npath = \"a\"\nrule = \"R4\"\ncount = 2\nreason = \"y\"";
        assert!(parse(dup).is_err());
    }
}
