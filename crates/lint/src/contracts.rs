//! `effect-contracts.toml` — declared effect contracts over the call
//! graph, with the same shrink-only ratchet semantics as `lint-allow.toml`.
//!
//! A contract names a set of *root* functions and a set of *forbidden*
//! effects: no function reachable from a root (over resolved call edges)
//! may carry a forbidden effect as a **direct** effect. Checking direct
//! effects at every reachable function is equivalent to checking the
//! propagated set at the root — every transitive effect originates at some
//! reachable function's direct site — and it is what makes precise witness
//! chains (root → … → offending function, plus the offending line)
//! possible.
//!
//! ```toml
//! # Ceiling on unresolved call sites (see graph.rs). Ratchet-down only:
//! # more unresolved sites than this fails; fewer demands lowering it.
//! [limits]
//! unresolved_calls = 40
//!
//! [[contract]]
//! name = "graph-kernel-deterministic"
//! roots = ["minoaner_blocking::graph::build_blocking_graph"]
//! forbid = ["WallClock", "Entropy", "UnorderedIter"]
//!
//! # Audited exceptions. `function` may end in `::*` to cover a subtree.
//! # `count` ratchets the number of (function, effect) violations the
//! # entry absorbs — exactly, shrink-only. Without `count` the entry is a
//! # blanket exemption and goes stale when it stops matching.
//! [[allow]]
//! contract = "graph-kernel-deterministic"
//! function = "minoaner_dataflow::pool::Executor::*"
//! effect = "WallClock"
//! count = 2
//! reason = "stage timing: recorded wall times never influence results"
//! ```
//!
//! Parsed by hand (TOML subset) because the lint crate builds with zero
//! dependencies; same discipline as `allow.rs`.

use crate::effects::{effect_name, parse_effect, EffectMask, EffectSets};
use crate::graph::{CallGraph, SymbolTable};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
pub struct Contract {
    pub name: String,
    /// Root patterns: exact fn paths or `prefix::*` subtree globs.
    pub roots: Vec<String>,
    pub forbid: EffectMask,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct ContractAllow {
    pub contract: String,
    pub function: String,
    pub effect: EffectMask,
    pub count: Option<usize>,
    pub reason: String,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct ContractsFile {
    pub contracts: Vec<Contract>,
    pub allows: Vec<ContractAllow>,
    /// Ceiling on unresolved call sites; `None` means "must be zero".
    pub unresolved_ceiling: Option<usize>,
}

/// A forbidden direct effect at a function reachable from a contract root.
#[derive(Debug, Clone)]
pub struct EffectViolation {
    pub contract: String,
    pub function: String,
    pub effect: EffectMask,
    pub file: String,
    pub line: u32,
    /// The offending pattern, e.g. "`Instant::now()`".
    pub what: String,
    /// Shortest call chain from a contract root to the function
    /// (inclusive at both ends).
    pub witness: Vec<String>,
    /// Audit reason if an `[[allow]]` entry absorbs this violation.
    pub allowed_reason: Option<String>,
}

/// Outcome of evaluating one contract.
#[derive(Debug, Clone)]
pub struct ContractResult {
    pub name: String,
    /// Fn paths the root patterns matched.
    pub roots: Vec<String>,
    pub reachable: usize,
    pub forbid: EffectMask,
    /// All violations, allowed ones included (with their reasons).
    pub violations: Vec<EffectViolation>,
}

impl ContractResult {
    pub fn open_violations(&self) -> impl Iterator<Item = &EffectViolation> {
        self.violations.iter().filter(|v| v.allowed_reason.is_none())
    }
}

/// `pattern` is either an exact path or `prefix::*`.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    match pattern.strip_suffix("::*") {
        Some(prefix) => path.strip_prefix(prefix).is_some_and(|rest| rest.starts_with("::")),
        None => pattern == path,
    }
}

// ───────────────────────────── parsing ─────────────────────────────

pub fn parse(src: &str) -> Result<ContractsFile, String> {
    enum Section {
        None,
        Limits,
        Contract(Contract),
        Allow(ContractAllow),
    }
    let mut file = ContractsFile::default();
    let mut section = Section::None;

    let finish = |s: Section, file: &mut ContractsFile| -> Result<(), String> {
        match s {
            Section::None | Section::Limits => Ok(()),
            Section::Contract(c) => {
                if c.name.is_empty() || c.roots.is_empty() || c.forbid == 0 {
                    return Err(format!(
                        "effect-contracts.toml:{}: contract needs `name`, `roots` and `forbid`",
                        c.line
                    ));
                }
                if file.contracts.iter().any(|x| x.name == c.name) {
                    return Err(format!(
                        "effect-contracts.toml:{}: duplicate contract `{}`",
                        c.line, c.name
                    ));
                }
                file.contracts.push(c);
                Ok(())
            }
            Section::Allow(a) => {
                if a.contract.is_empty() || a.function.is_empty() || a.effect == 0 {
                    return Err(format!(
                        "effect-contracts.toml:{}: allow needs `contract`, `function` and `effect`",
                        a.line
                    ));
                }
                if a.reason.is_empty() {
                    return Err(format!(
                        "effect-contracts.toml:{}: allow for {} needs a `reason`",
                        a.line, a.function
                    ));
                }
                if a.count == Some(0) {
                    return Err(format!(
                        "effect-contracts.toml:{}: count = 0 — delete the entry instead",
                        a.line
                    ));
                }
                if file
                    .allows
                    .iter()
                    .any(|x| x.contract == a.contract && x.function == a.function && x.effect == a.effect)
                {
                    return Err(format!(
                        "effect-contracts.toml:{}: duplicate allow for {} / {} / {}",
                        a.line,
                        a.contract,
                        a.function,
                        effect_name(a.effect)
                    ));
                }
                file.allows.push(a);
                Ok(())
            }
        }
    };

    // Join multi-line arrays (`roots = [` … `]`) into one logical line so
    // the per-line parser below sees balanced brackets. Section headers
    // (`[[contract]]`) are already balanced and pass through untouched.
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut logical: Vec<(u32, String)> = Vec::new();
    let mut i = 0usize;
    while i < raw_lines.len() {
        let lineno = i as u32 + 1;
        let line = raw_lines[i].trim();
        i += 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut joined = line.to_string();
        let depth = |s: &str| {
            s.chars().fold(0i32, |d, c| d + (c == '[') as i32 - (c == ']') as i32)
        };
        let mut d = depth(&joined);
        while d > 0 && i < raw_lines.len() {
            let cont = raw_lines[i].trim();
            i += 1;
            if cont.is_empty() || cont.starts_with('#') {
                continue;
            }
            joined.push(' ');
            joined.push_str(cont);
            d += depth(cont);
        }
        logical.push((lineno, joined));
    }

    for (lineno, line) in logical {
        let line = line.as_str();
        match line {
            "[limits]" => {
                finish(std::mem::replace(&mut section, Section::Limits), &mut file)?;
                continue;
            }
            "[[contract]]" => {
                let fresh = Contract { name: String::new(), roots: Vec::new(), forbid: 0, line: lineno };
                finish(std::mem::replace(&mut section, Section::Contract(fresh)), &mut file)?;
                continue;
            }
            "[[allow]]" => {
                let fresh = ContractAllow {
                    contract: String::new(),
                    function: String::new(),
                    effect: 0,
                    count: None,
                    reason: String::new(),
                    line: lineno,
                };
                finish(std::mem::replace(&mut section, Section::Allow(fresh)), &mut file)?;
                continue;
            }
            _ => {}
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "effect-contracts.toml:{lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match &mut section {
            Section::None => {
                return Err(format!(
                    "effect-contracts.toml:{lineno}: `{key}` outside of a section"
                ));
            }
            Section::Limits => match key {
                "unresolved_calls" => {
                    file.unresolved_ceiling = Some(value.parse::<usize>().map_err(|_| {
                        format!("effect-contracts.toml:{lineno}: unresolved_calls must be an integer")
                    })?);
                }
                _ => {
                    return Err(format!(
                        "effect-contracts.toml:{lineno}: unknown [limits] key `{key}`"
                    ))
                }
            },
            Section::Contract(c) => match key {
                "name" => c.name = unquote(value, lineno)?,
                "roots" => c.roots = parse_string_array(value, lineno)?,
                "forbid" => {
                    for name in parse_string_array(value, lineno)? {
                        c.forbid |= parse_effect(&name).ok_or_else(|| {
                            format!("effect-contracts.toml:{lineno}: unknown effect `{name}`")
                        })?;
                    }
                }
                _ => {
                    return Err(format!(
                        "effect-contracts.toml:{lineno}: unknown contract key `{key}`"
                    ))
                }
            },
            Section::Allow(a) => match key {
                "contract" => a.contract = unquote(value, lineno)?,
                "function" => a.function = unquote(value, lineno)?,
                "effect" => {
                    let name = unquote(value, lineno)?;
                    a.effect = parse_effect(&name).ok_or_else(|| {
                        format!("effect-contracts.toml:{lineno}: unknown effect `{name}`")
                    })?;
                }
                "count" => {
                    a.count = Some(value.parse::<usize>().map_err(|_| {
                        format!("effect-contracts.toml:{lineno}: count must be an integer")
                    })?);
                }
                "reason" => a.reason = unquote(value, lineno)?,
                _ => {
                    return Err(format!(
                        "effect-contracts.toml:{lineno}: unknown allow key `{key}`"
                    ))
                }
            },
        }
    }
    finish(section, &mut file)?;
    Ok(file)
}

fn unquote(value: &str, lineno: u32) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| {
            format!("effect-contracts.toml:{lineno}: expected a quoted string, got `{value}`")
        })
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            format!("effect-contracts.toml:{lineno}: expected `[\"…\", …]`, got `{value}`")
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(unquote(part, lineno)?);
    }
    Ok(out)
}

// ───────────────────────────── evaluation ─────────────────────────────

/// Evaluates every contract: multi-source BFS from the matched roots over
/// resolved edges, collecting forbidden direct effects with shortest
/// witness chains, then applies the allowlist ratchet.
pub fn evaluate(
    file: &ContractsFile,
    table: &SymbolTable,
    graph: &CallGraph,
    effects: &EffectSets,
) -> (Vec<ContractResult>, Vec<String>) {
    let mut results = Vec::new();
    let mut policy_errors = Vec::new();

    for contract in &file.contracts {
        let mut roots: Vec<usize> = Vec::new();
        for pattern in &contract.roots {
            let matched: Vec<usize> = table
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.is_test && path_matches(pattern, &f.path))
                .map(|(i, _)| i)
                .collect();
            if matched.is_empty() {
                policy_errors.push(format!(
                    "contract `{}`: root pattern `{}` matches no function — \
                     update it if the function moved",
                    contract.name, pattern
                ));
            }
            roots.extend(matched);
        }
        roots.sort_unstable();
        roots.dedup();

        // BFS with parent pointers for shortest witness chains.
        let mut parent: Vec<Option<usize>> = vec![None; table.len()];
        let mut seen: Vec<bool> = vec![false; table.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in &roots {
            seen[r] = true;
            queue.push_back(r);
        }
        let mut reachable = 0usize;
        let mut violations: Vec<EffectViolation> = Vec::new();
        while let Some(f) = queue.pop_front() {
            reachable += 1;
            let bad = effects.direct[f] & contract.forbid;
            if bad != 0 {
                let mut chain = vec![f];
                let mut cur = f;
                while let Some(p) = parent[cur] {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                let witness: Vec<String> =
                    chain.iter().map(|&i| table.fns[i].path.clone()).collect();
                for (mask, _) in crate::effects::ALL_EFFECTS {
                    if bad & mask == 0 {
                        continue;
                    }
                    let site = effects.site(f, *mask);
                    violations.push(EffectViolation {
                        contract: contract.name.clone(),
                        function: table.fns[f].path.clone(),
                        effect: *mask,
                        file: table.fns[f].file.clone(),
                        line: site.map(|s| s.line).unwrap_or(table.fns[f].line),
                        what: site.map(|s| s.what.clone()).unwrap_or_default(),
                        witness: witness.clone(),
                        allowed_reason: None,
                    });
                }
            }
            for &g in &graph.edges[f] {
                if !seen[g] {
                    seen[g] = true;
                    parent[g] = Some(f);
                    queue.push_back(g);
                }
            }
        }
        violations.sort_by(|a, b| {
            (&a.function, effect_name(a.effect)).cmp(&(&b.function, effect_name(b.effect)))
        });
        results.push(ContractResult {
            name: contract.name.clone(),
            roots: roots.iter().map(|&i| table.fns[i].path.clone()).collect(),
            reachable,
            forbid: contract.forbid,
            violations,
        });
    }

    apply_allows(file, &mut results, &mut policy_errors);

    // Unresolved ceiling: ratchet-down only.
    let actual = graph.unresolved.len();
    match file.unresolved_ceiling {
        None if actual > 0 => policy_errors.push(format!(
            "{actual} unresolved call site(s) but no [limits] unresolved_calls ceiling — add one"
        )),
        Some(max) if actual > max => policy_errors.push(format!(
            "{actual} unresolved call site(s) exceed the ceiling of {max} — \
             improve resolution or justify raising the ceiling"
        )),
        Some(max) if actual < max => policy_errors.push(format!(
            "ratchet: {actual} unresolved call site(s), ceiling is {max} — lower it to {actual}"
        )),
        _ => {}
    }

    (results, policy_errors)
}

fn apply_allows(
    file: &ContractsFile,
    results: &mut [ContractResult],
    policy_errors: &mut Vec<String>,
) {
    for allow in &file.allows {
        let Some(result) = results.iter_mut().find(|r| r.name == allow.contract) else {
            policy_errors.push(format!(
                "allow entry for unknown contract `{}` (function {})",
                allow.contract, allow.function
            ));
            continue;
        };
        let mut matched = 0usize;
        for v in &mut result.violations {
            if v.effect == allow.effect
                && v.allowed_reason.is_none()
                && path_matches(&allow.function, &v.function)
            {
                v.allowed_reason = Some(allow.reason.clone());
                matched += 1;
            }
        }
        match allow.count {
            None => {
                if matched == 0 {
                    policy_errors.push(format!(
                        "stale allow: `{}` / {} no longer matches any {} violation — delete it",
                        allow.contract,
                        allow.function,
                        effect_name(allow.effect)
                    ));
                }
            }
            Some(max) => {
                if matched == 0 {
                    policy_errors.push(format!(
                        "stale allow: `{}` / {} no longer matches any {} violation — delete it",
                        allow.contract,
                        allow.function,
                        effect_name(allow.effect)
                    ));
                } else if matched > max {
                    policy_errors.push(format!(
                        "`{}` / {}: {} {} violations but the allow entry covers {} — \
                         fix the new ones, the allowlist only shrinks",
                        allow.contract,
                        allow.function,
                        matched,
                        effect_name(allow.effect),
                        max
                    ));
                } else if matched < max {
                    policy_errors.push(format!(
                        "ratchet: `{}` / {} now matches {} {} violations (entry says {}) — \
                         lower the count to {}",
                        allow.contract,
                        allow.function,
                        matched,
                        effect_name(allow.effect),
                        max,
                        matched
                    ));
                }
            }
        }
    }

    // Over-ratcheted allows must not hide *new* violations: any violation
    // still un-absorbed stays open, which the caller reports. Nothing to
    // do here — absorption is per-violation above.
    let _ = policy_errors;
}

/// Per-effect counts of open (un-allowed) violations across all contracts.
pub fn open_counts(results: &[ContractResult]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for r in results {
        for v in r.open_violations() {
            *out.entry(effect_name(v.effect)).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::{EffectSets, ENTROPY, PANIC, WALL_CLOCK};
    use crate::graph::{scan_file, SymbolTable};
    use crate::lexer::lex;
    use crate::rules;

    const SAMPLE: &str = r#"
[limits]
unresolved_calls = 3

[[contract]]
name = "kernel"
roots = ["minoaner_kb::demo::entry"]
forbid = ["WallClock", "Entropy"]

[[allow]]
contract = "kernel"
function = "minoaner_kb::demo::timed"
effect = "WallClock"
count = 1
reason = "stage timing only"
"#;

    #[test]
    fn parses_limits_contracts_and_allows() {
        let file = parse(SAMPLE).unwrap();
        assert_eq!(file.unresolved_ceiling, Some(3));
        assert_eq!(file.contracts.len(), 1);
        assert_eq!(file.contracts[0].forbid, WALL_CLOCK | ENTROPY);
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].count, Some(1));
    }

    #[test]
    fn multi_line_arrays_are_joined() {
        let src = "\
[[contract]]
name = \"kernel\"
roots = [
  \"a::b\",
  # a comment inside the array
  \"c::d\",
]
forbid = [\"Panic\"]
";
        let file = parse(src).unwrap();
        assert_eq!(file.contracts[0].roots, ["a::b", "c::d"]);
        assert_eq!(file.contracts[0].forbid, PANIC);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse("[[contract]]\nname = \"x\"\nforbid = [\"Panic\"]").is_err(), "missing roots");
        assert!(parse("[[contract]]\nname = \"x\"\nroots = [\"a\"]\nforbid = [\"Nope\"]").is_err());
        assert!(
            parse("[[allow]]\ncontract = \"c\"\nfunction = \"f\"\neffect = \"Panic\"").is_err(),
            "missing reason"
        );
        assert!(parse("x = 1").is_err(), "key outside section");
    }

    #[test]
    fn glob_patterns_match_subtrees() {
        assert!(path_matches("a::b::*", "a::b::c"));
        assert!(path_matches("a::b::*", "a::b::c::d"));
        assert!(!path_matches("a::b::*", "a::bc::d"));
        assert!(!path_matches("a::b::*", "a::b"));
        assert!(path_matches("a::b", "a::b"));
        assert!(!path_matches("a::b", "a::b::c"));
    }

    fn world() -> (SymbolTable, crate::graph::CallGraph, EffectSets) {
        let src = "\
            pub fn entry() { middle(); }\n\
            fn middle() { timed(); noisy(); }\n\
            fn timed() { let t = Instant::now(); }\n\
            fn noisy() { let r = rand::thread_rng(); }\n\
            fn unrelated() { let x: Option<u32> = None; x.unwrap(); }\n";
        let toks = lex(src);
        let spans = rules::cfg_test_spans(&toks);
        let mut table = SymbolTable::default();
        scan_file(&mut table, "crates/kb/src/demo.rs", "minoaner_kb", &["demo".into()], &toks, &spans, false);
        let graph = table.resolve();
        let hash = crate::effects::std_hash_idents(&toks);
        let mut direct = Vec::new();
        let mut sites = Vec::new();
        for f in &table.fns {
            let ranges = f.body.clone().map(|b| vec![b]).unwrap_or_default();
            let (m, s) = crate::effects::scan_direct(&toks, &ranges, &hash, f.is_test);
            direct.push(m);
            sites.push(s);
        }
        let effects = EffectSets::propagate(direct, sites, &graph);
        (table, graph, effects)
    }

    #[test]
    fn violations_carry_shortest_witness_chains() {
        let (table, graph, effects) = world();
        let file = parse(SAMPLE).unwrap();
        let (results, errors) = evaluate(&file, &table, &graph, &effects);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        // `timed` (WallClock, allowed) and `noisy` (Entropy, open);
        // `unrelated`'s Panic is out of contract scope.
        assert_eq!(r.violations.len(), 2, "{:#?}", r.violations);
        let open: Vec<_> = r.open_violations().collect();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].function, "minoaner_kb::demo::noisy");
        assert_eq!(
            open[0].witness,
            ["minoaner_kb::demo::entry", "minoaner_kb::demo::middle", "minoaner_kb::demo::noisy"]
        );
        assert!(open[0].what.contains("thread_rng"));
        // Ceiling is 3 but there are 0 unresolved — ratchet message.
        assert!(errors.iter().any(|e| e.contains("lower it to 0")), "{errors:?}");
        // Root that matches nothing is a policy error.
        let mut bad = parse(SAMPLE).unwrap();
        bad.contracts[0].roots = vec!["minoaner_kb::demo::gone".into()];
        let (_, errors) = evaluate(&bad, &table, &graph, &effects);
        assert!(errors.iter().any(|e| e.contains("matches no function")));
    }

    #[test]
    fn allow_ratchet_reports_drift() {
        let (table, graph, effects) = world();
        let mut file = parse(SAMPLE).unwrap();
        file.unresolved_ceiling = Some(0);
        // Absorb the Entropy violation too so only ratchet drift remains.
        file.allows.push(ContractAllow {
            contract: "kernel".into(),
            function: "minoaner_kb::demo::noisy".into(),
            effect: ENTROPY,
            count: Some(2), // says 2, actual 1 → ratchet error
            reason: "test".into(),
            line: 0,
        });
        let (results, errors) = evaluate(&file, &table, &graph, &effects);
        assert!(results[0].open_violations().next().is_none());
        assert!(errors.iter().any(|e| e.contains("lower the count to 1")), "{errors:?}");
        // Stale entry: allow for a function with no violations.
        file.allows.push(ContractAllow {
            contract: "kernel".into(),
            function: "minoaner_kb::demo::entry".into(),
            effect: PANIC,
            count: None,
            reason: "test".into(),
            line: 0,
        });
        let (_, errors) = evaluate(&file, &table, &graph, &effects);
        assert!(errors.iter().any(|e| e.contains("stale allow")), "{errors:?}");
    }
}
