//! minoaner-lint: the workspace determinism & concurrency linter.
//!
//! Two subcommands:
//!
//! * `check` — token-level rules R1–R5 over every workspace file, gated by
//!   the shrink-only allowlist in `lint-allow.toml` (DESIGN.md §12).
//! * `effects` — the call-graph effect analysis (DESIGN.md §17): a symbol
//!   table and call graph over the whole workspace, per-function direct
//!   effect sets propagated to a fixpoint, checked against the declared
//!   contracts in `effect-contracts.toml`.
//!
//! Both emit a versioned machine-readable report via `--json`
//! ([`LINT_SCHEMA_VERSION`]), built on the exact-round-trip document model
//! in [`json`].

pub mod allow;
pub mod contracts;
pub mod effects;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod rules;

use allow::AllowEntry;
use contracts::ContractResult;
use json::Json;
use rules::{FileClass, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version stamped into every `--json` report (`check` and `effects`).
/// Bump when the report shape changes; mirrors `TRACE_SCHEMA_VERSION` in
/// `minoaner_dataflow::trace`.
pub const LINT_SCHEMA_VERSION: i64 = 1;

/// Directories (workspace-relative prefixes) never scanned.
const SKIP_PREFIXES: &[&str] = &[
    "target",
    ".git",
    "tools/offline-stubs",
    "crates/lint/tests/fixtures",
];

#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist policy failures (ratchet drift, stale entries, parse
    /// errors surfaced per entry).
    pub policy_errors: Vec<String>,
    /// Total files scanned.
    pub files_scanned: usize,
    /// Raw (pre-allowlist) violation counts per rule.
    pub raw_counts: BTreeMap<&'static str, usize>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.policy_errors.is_empty()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        }
        for e in &self.policy_errors {
            let _ = writeln!(out, "allowlist: {e}");
        }
        let _ = writeln!(
            out,
            "minoaner-lint: {} file(s) scanned, {} violation(s), {} policy error(s)",
            self.files_scanned,
            self.violations.len(),
            self.policy_errors.len()
        );
        out
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(LINT_SCHEMA_VERSION)),
            ("tool".into(), Json::str("minoaner-lint check")),
            (
                "violations".into(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("rule".into(), Json::str(v.rule)),
                                ("path".into(), Json::str(&v.path)),
                                ("line".into(), Json::num(v.line as usize)),
                                ("message".into(), Json::str(&v.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "policy_errors".into(),
                Json::Arr(self.policy_errors.iter().map(Json::str).collect()),
            ),
            ("files_scanned".into(), Json::num(self.files_scanned)),
            (
                "raw_counts".into(),
                Json::Obj(
                    self.raw_counts
                        .iter()
                        .map(|(rule, n)| ((*rule).to_string(), Json::num(*n)))
                        .collect(),
                ),
            ),
            ("clean".into(), Json::Bool(self.clean())),
        ])
    }

    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

/// Classify a workspace-relative file path, or `None` to skip it.
fn classify(rel: &str) -> Option<FileClass> {
    if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
    {
        return Some(FileClass::TestOrBench);
    }
    Some(FileClass::Library)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<(PathBuf, String, FileClass)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "path outside root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_PREFIXES.iter().any(|p| rel == *p || rel.starts_with(&format!("{p}/"))) {
                continue;
            }
            walk(&path, root, files)?;
        } else if let Some(class) = classify(&rel) {
            files.push((path, rel, class));
        }
    }
    Ok(())
}

/// Run every rule over every workspace file, then apply the allowlist.
pub fn run_check(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    // A missing allowlist is an empty allowlist.
    let allow_src = std::fs::read_to_string(allow_path).unwrap_or_default();
    let entries = allow::parse(&allow_src)?;

    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    report.files_scanned = files.len();

    let mut all: Vec<Violation> = Vec::new();
    for (path, rel, class) in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let toks = lexer::lex(&src);
        all.extend(rules::run_all(rel, *class, &src, &toks));
    }
    for v in &all {
        *report.raw_counts.entry(v.rule).or_insert(0) += 1;
    }

    apply_allowlist(&entries, all, &mut report);
    Ok(report)
}

fn apply_allowlist(entries: &[AllowEntry], all: Vec<Violation>, report: &mut Report) {
    // Count per (path, rule) to evaluate ratchets.
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &all {
        *counts.entry((v.path.clone(), v.rule.to_string())).or_insert(0) += 1;
    }

    for e in entries {
        let actual = counts.get(&(e.path.clone(), e.rule.clone())).copied().unwrap_or(0);
        match e.count {
            None => {
                if actual == 0 {
                    report.policy_errors.push(format!(
                        "stale entry: {} has no {} violations any more — delete it",
                        e.path, e.rule
                    ));
                }
            }
            Some(max) => {
                if actual == 0 {
                    report.policy_errors.push(format!(
                        "stale entry: {} has no {} violations any more — delete it",
                        e.path, e.rule
                    ));
                } else if actual > max {
                    report.policy_errors.push(format!(
                        "{}: {} {} violations but lint-allow.toml allows {} — \
                         fix the new ones, the allowlist only shrinks",
                        e.path, actual, e.rule, max
                    ));
                } else if actual < max {
                    report.policy_errors.push(format!(
                        "ratchet: {} now has {} {} violations (allowlist says {}) — \
                         lower the count to {}",
                        e.path, actual, e.rule, max, actual
                    ));
                }
            }
        }
    }

    let allowed = |v: &Violation| {
        entries
            .iter()
            .any(|e| e.path == v.path && e.rule == v.rule)
    };
    report.violations = all.into_iter().filter(|v| !allowed(v)).collect();
}

// ───────────────────────── effect analysis driver ─────────────────────────

/// Result of `minoaner-lint effects`: the evaluated contracts plus the
/// coverage statistics the unresolved-call ratchet is measured against.
#[derive(Debug, Default)]
pub struct EffectsReport {
    pub results: Vec<ContractResult>,
    pub policy_errors: Vec<String>,
    pub files_scanned: usize,
    pub functions: usize,
    pub resolved_calls: usize,
    pub external_calls: usize,
    /// (caller path, call display, file, line, candidate count).
    pub unresolved: Vec<(String, String, String, u32, usize)>,
    pub unresolved_ceiling: Option<usize>,
}

impl EffectsReport {
    pub fn clean(&self) -> bool {
        self.policy_errors.is_empty()
            && self.results.iter().all(|r| r.open_violations().next().is_none())
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let allowed = r.violations.iter().filter(|v| v.allowed_reason.is_some()).count();
            let open: Vec<_> = r.open_violations().collect();
            let _ = writeln!(
                out,
                "contract `{}`: {} root(s), {} reachable fn(s), {} open / {} allowed violation(s)",
                r.name,
                r.roots.len(),
                r.reachable,
                open.len(),
                allowed
            );
            for v in open {
                let _ = writeln!(
                    out,
                    "  {}:{}: {} has effect {} ({})",
                    v.file,
                    v.line,
                    v.function,
                    effects::effect_name(v.effect),
                    v.what
                );
                let _ = writeln!(out, "    via {}", v.witness.join(" -> "));
            }
        }
        for e in &self.policy_errors {
            let _ = writeln!(out, "contracts: {e}");
        }
        let _ = writeln!(
            out,
            "minoaner-lint effects: {} file(s), {} fn(s), {} resolved / {} external / {} unresolved call(s){}",
            self.files_scanned,
            self.functions,
            self.resolved_calls,
            self.external_calls,
            self.unresolved.len(),
            match self.unresolved_ceiling {
                Some(c) => format!(" (ceiling {c})"),
                None => String::new(),
            }
        );
        out
    }

    pub fn to_json(&self) -> Json {
        let contracts = self
            .results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&r.name)),
                    ("roots".into(), Json::Arr(r.roots.iter().map(Json::str).collect())),
                    ("reachable_functions".into(), Json::num(r.reachable)),
                    (
                        "forbid".into(),
                        Json::Arr(effects::mask_names(r.forbid).into_iter().map(Json::str).collect()),
                    ),
                    (
                        "violations".into(),
                        Json::Arr(
                            r.violations
                                .iter()
                                .map(|v| {
                                    Json::Obj(vec![
                                        ("function".into(), Json::str(&v.function)),
                                        ("effect".into(), Json::str(effects::effect_name(v.effect))),
                                        ("file".into(), Json::str(&v.file)),
                                        ("line".into(), Json::num(v.line as usize)),
                                        ("what".into(), Json::str(&v.what)),
                                        (
                                            "witness".into(),
                                            Json::Arr(v.witness.iter().map(Json::str).collect()),
                                        ),
                                        ("allowed".into(), Json::Bool(v.allowed_reason.is_some())),
                                        (
                                            "reason".into(),
                                            match &v.allowed_reason {
                                                Some(r) => Json::str(r),
                                                None => Json::Null,
                                            },
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let unresolved_sites = self
            .unresolved
            .iter()
            .map(|(caller, call, file, line, candidates)| {
                Json::Obj(vec![
                    ("caller".into(), Json::str(caller)),
                    ("call".into(), Json::str(call)),
                    ("file".into(), Json::str(file)),
                    ("line".into(), Json::num(*line as usize)),
                    ("candidates".into(), Json::num(*candidates)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(LINT_SCHEMA_VERSION)),
            ("tool".into(), Json::str("minoaner-lint effects")),
            ("files_scanned".into(), Json::num(self.files_scanned)),
            ("functions".into(), Json::num(self.functions)),
            (
                "calls".into(),
                Json::Obj(vec![
                    ("resolved".into(), Json::num(self.resolved_calls)),
                    ("external".into(), Json::num(self.external_calls)),
                    ("unresolved".into(), Json::num(self.unresolved.len())),
                    (
                        "unresolved_ceiling".into(),
                        match self.unresolved_ceiling {
                            Some(c) => Json::num(c),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("unresolved_sites".into(), Json::Arr(unresolved_sites)),
            ("contracts".into(), Json::Arr(contracts)),
            (
                "policy_errors".into(),
                Json::Arr(self.policy_errors.iter().map(Json::str).collect()),
            ),
            ("clean".into(), Json::Bool(self.clean())),
        ])
    }

    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

/// Builds the workspace symbol table + call graph, infers and propagates
/// effects, and evaluates the contracts in `contracts_path`.
pub fn run_effects(root: &Path, contracts_path: &Path) -> Result<EffectsReport, String> {
    let contracts_src = std::fs::read_to_string(contracts_path)
        .map_err(|e| format!("read {}: {e}", contracts_path.display()))?;
    let file = contracts::parse(&contracts_src)?;

    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));

    let mut table = graph::SymbolTable::default();
    // Per-fn direct effects, collected file by file (fn ids are assigned
    // in insertion order, so pushing in scan order keeps them aligned).
    let mut direct: Vec<effects::EffectMask> = Vec::new();
    let mut sites: Vec<Vec<effects::DirectSite>> = Vec::new();
    let mut files_scanned = 0usize;

    for (path, rel, _class) in &files {
        // Only crate source trees enter the symbol table: tests, benches
        // and examples cannot be reached from any contract root.
        let Some((krate, base_mods)) = graph::module_of(rel) else {
            continue;
        };
        files_scanned += 1;
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let toks = lexer::lex(&src);
        let test_spans = rules::cfg_test_spans(&toks);
        let ids = graph::scan_file(&mut table, rel, &krate, &base_mods, &toks, &test_spans, false);
        let hash_idents = effects::std_hash_idents(&toks);

        // Each fn's direct effects come from its *own* tokens: body minus
        // nested fn bodies (mirrors the call-collection pass in graph.rs).
        let spans: Vec<(usize, std::ops::Range<usize>)> = ids
            .iter()
            .filter_map(|&id| table.fns[id].body.clone().map(|b| (id, b)))
            .collect();
        let mut per_file: BTreeMap<usize, (effects::EffectMask, Vec<effects::DirectSite>)> =
            BTreeMap::new();
        for &(id, ref body) in &spans {
            let nested: Vec<std::ops::Range<usize>> = spans
                .iter()
                .filter(|(other, b)| *other != id && b.start > body.start && b.end <= body.end)
                .map(|(_, b)| b.clone())
                .collect();
            let own = graph::subtract_ranges(body.clone(), &nested);
            per_file.insert(id, effects::scan_direct(&toks, &own, &hash_idents, table.fns[id].is_test));
        }
        for &id in &ids {
            debug_assert_eq!(id, direct.len());
            let (m, s) = per_file.remove(&id).unwrap_or((0, Vec::new()));
            direct.push(m);
            sites.push(s);
        }
    }

    let call_graph = table.resolve();
    let effect_sets = effects::EffectSets::propagate(direct, sites, &call_graph);
    let (results, policy_errors) = contracts::evaluate(&file, &table, &call_graph, &effect_sets);

    let unresolved = call_graph
        .unresolved
        .iter()
        .map(|u| {
            let caller = &table.fns[u.caller];
            (
                caller.path.clone(),
                u.call.display(),
                caller.file.clone(),
                u.call.line(),
                u.candidates,
            )
        })
        .collect();

    Ok(EffectsReport {
        results,
        policy_errors,
        files_scanned,
        functions: table.len(),
        resolved_calls: call_graph.resolved_calls,
        external_calls: call_graph.external_calls,
        unresolved,
        unresolved_ceiling: file.unresolved_ceiling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_routes_paths() {
        assert_eq!(classify("crates/kb/src/store.rs"), Some(FileClass::Library));
        assert_eq!(classify("crates/kb/tests/x.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("crates/bench/benches/graph.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("tests/property_based.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Library));
        assert_eq!(classify("crates/lint/tests/fixtures/bad/r1.rs"), None);
        assert_eq!(classify("tools/offline-stubs/rand/src/lib.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn ratchet_reports_drift_in_both_directions() {
        let entries = allow::parse(
            "[[allow]]\npath = \"a.rs\"\nrule = \"R4\"\ncount = 2\nreason = \"x\"",
        )
        .unwrap();
        let mk = |n: usize| {
            (0..n)
                .map(|i| Violation {
                    rule: "R4",
                    path: "a.rs".into(),
                    line: i as u32 + 1,
                    message: String::new(),
                })
                .collect::<Vec<_>>()
        };

        let mut r = Report::default();
        apply_allowlist(&entries, mk(2), &mut r);
        assert!(r.clean(), "{r:?}");

        let mut r = Report::default();
        apply_allowlist(&entries, mk(3), &mut r);
        assert_eq!(r.policy_errors.len(), 1);
        assert!(r.policy_errors[0].contains("only shrinks"));

        let mut r = Report::default();
        apply_allowlist(&entries, mk(1), &mut r);
        assert_eq!(r.policy_errors.len(), 1);
        assert!(r.policy_errors[0].contains("lower the count"));

        let mut r = Report::default();
        apply_allowlist(&entries, mk(0), &mut r);
        assert!(r.policy_errors[0].contains("stale"));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "R1",
            path: "a \"b\".rs".into(),
            line: 3,
            message: "use\nDet".into(),
        });
        r.raw_counts.insert("R1", 1);
        let j = r.render_json();
        assert!(j.contains("\"rule\": \"R1\""));
        assert!(j.contains("\\\"b\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn check_json_round_trips_exactly() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "R5",
            path: "crates/kb/src/disk.rs".into(),
            line: 420,
            message: "`unsafe` without a `// SAFETY:` comment".into(),
        });
        r.policy_errors.push("ratchet: drift".into());
        r.files_scanned = 7;
        r.raw_counts.insert("R5", 1);
        let text = r.render_json();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, r.to_json());
        assert_eq!(parsed.render(), text);
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_i64),
            Some(LINT_SCHEMA_VERSION)
        );
    }

    #[test]
    fn effects_json_round_trips_exactly() {
        let mut r = EffectsReport {
            files_scanned: 3,
            functions: 9,
            resolved_calls: 12,
            external_calls: 30,
            unresolved_ceiling: Some(2),
            ..EffectsReport::default()
        };
        r.unresolved.push((
            "minoaner_kb::demo::f".into(),
            ".shared_name()".into(),
            "crates/kb/src/demo.rs".into(),
            14,
            2,
        ));
        r.results.push(ContractResult {
            name: "kernel".into(),
            roots: vec!["minoaner_kb::demo::entry".into()],
            reachable: 4,
            forbid: effects::WALL_CLOCK | effects::ENTROPY,
            violations: vec![contracts::EffectViolation {
                contract: "kernel".into(),
                function: "minoaner_kb::demo::noisy".into(),
                effect: effects::ENTROPY,
                file: "crates/kb/src/demo.rs".into(),
                line: 4,
                what: "`thread_rng`".into(),
                witness: vec!["minoaner_kb::demo::entry".into(), "minoaner_kb::demo::noisy".into()],
                allowed_reason: None,
            }],
        });
        let text = r.render_json();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, r.to_json());
        assert_eq!(parsed.render(), text);
        assert!(!parsed.get("clean").and_then(Json::as_bool).unwrap());
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_i64),
            Some(LINT_SCHEMA_VERSION)
        );
    }
}
