//! minoaner-lint: the workspace determinism & concurrency linter.
//!
//! Run as `cargo run -p minoaner-lint -- check` (add `--json` for the
//! machine-readable report). The four rules and the allowlist policy are
//! documented in DESIGN.md §12; fixtures live in `tests/fixtures/`.

pub mod allow;
pub mod lexer;
pub mod rules;

use allow::AllowEntry;
use rules::{FileClass, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative prefixes) never scanned.
const SKIP_PREFIXES: &[&str] = &[
    "target",
    ".git",
    "tools/offline-stubs",
    "crates/lint/tests/fixtures",
];

#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist policy failures (ratchet drift, stale entries, parse
    /// errors surfaced per entry).
    pub policy_errors: Vec<String>,
    /// Total files scanned.
    pub files_scanned: usize,
    /// Raw (pre-allowlist) violation counts per rule.
    pub raw_counts: BTreeMap<&'static str, usize>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.policy_errors.is_empty()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        }
        for e in &self.policy_errors {
            let _ = writeln!(out, "allowlist: {e}");
        }
        let _ = writeln!(
            out,
            "minoaner-lint: {} file(s) scanned, {} violation(s), {} policy error(s)",
            self.files_scanned,
            self.violations.len(),
            self.policy_errors.len()
        );
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message),
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"policy_errors\": [");
        for (i, e) in self.policy_errors.iter().enumerate() {
            let _ = write!(out, "{}\n    {}", if i == 0 { "" } else { "," }, json_str(e));
        }
        if !self.policy_errors.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "],\n  \"files_scanned\": {},\n  \"raw_counts\": {{", self.files_scanned);
        for (i, (rule, n)) in self.raw_counts.iter().enumerate() {
            let _ = write!(out, "{}{}: {}", if i == 0 { "" } else { ", " }, json_str(rule), n);
        }
        let _ = write!(out, "}},\n  \"clean\": {}\n}}", self.clean());
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Classify a workspace-relative file path, or `None` to skip it.
fn classify(rel: &str) -> Option<FileClass> {
    if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
    {
        return Some(FileClass::TestOrBench);
    }
    Some(FileClass::Library)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<(PathBuf, String, FileClass)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "path outside root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_PREFIXES.iter().any(|p| rel == *p || rel.starts_with(&format!("{p}/"))) {
                continue;
            }
            walk(&path, root, files)?;
        } else if let Some(class) = classify(&rel) {
            files.push((path, rel, class));
        }
    }
    Ok(())
}

/// Run every rule over every workspace file, then apply the allowlist.
pub fn run_check(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    let allow_src = match std::fs::read_to_string(allow_path) {
        Ok(s) => s,
        Err(_) => String::new(), // missing allowlist = empty allowlist
    };
    let entries = allow::parse(&allow_src)?;

    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    report.files_scanned = files.len();

    let mut all: Vec<Violation> = Vec::new();
    for (path, rel, class) in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let toks = lexer::lex(&src);
        all.extend(rules::run_all(rel, *class, &toks));
    }
    for v in &all {
        *report.raw_counts.entry(v.rule).or_insert(0) += 1;
    }

    apply_allowlist(&entries, all, &mut report);
    Ok(report)
}

fn apply_allowlist(entries: &[AllowEntry], all: Vec<Violation>, report: &mut Report) {
    // Count per (path, rule) to evaluate ratchets.
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &all {
        *counts.entry((v.path.clone(), v.rule.to_string())).or_insert(0) += 1;
    }

    for e in entries {
        let actual = counts.get(&(e.path.clone(), e.rule.clone())).copied().unwrap_or(0);
        match e.count {
            None => {
                if actual == 0 {
                    report.policy_errors.push(format!(
                        "stale entry: {} has no {} violations any more — delete it",
                        e.path, e.rule
                    ));
                }
            }
            Some(max) => {
                if actual == 0 {
                    report.policy_errors.push(format!(
                        "stale entry: {} has no {} violations any more — delete it",
                        e.path, e.rule
                    ));
                } else if actual > max {
                    report.policy_errors.push(format!(
                        "{}: {} {} violations but lint-allow.toml allows {} — \
                         fix the new ones, the allowlist only shrinks",
                        e.path, actual, e.rule, max
                    ));
                } else if actual < max {
                    report.policy_errors.push(format!(
                        "ratchet: {} now has {} {} violations (allowlist says {}) — \
                         lower the count to {}",
                        e.path, actual, e.rule, max, actual
                    ));
                }
            }
        }
    }

    let allowed = |v: &Violation| {
        entries
            .iter()
            .any(|e| e.path == v.path && e.rule == v.rule)
    };
    report.violations = all.into_iter().filter(|v| !allowed(v)).collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_routes_paths() {
        assert_eq!(classify("crates/kb/src/store.rs"), Some(FileClass::Library));
        assert_eq!(classify("crates/kb/tests/x.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("crates/bench/benches/graph.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("tests/property_based.rs"), Some(FileClass::TestOrBench));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Library));
        assert_eq!(classify("crates/lint/tests/fixtures/bad/r1.rs"), None);
        assert_eq!(classify("tools/offline-stubs/rand/src/lib.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn ratchet_reports_drift_in_both_directions() {
        let entries = allow::parse(
            "[[allow]]\npath = \"a.rs\"\nrule = \"R4\"\ncount = 2\nreason = \"x\"",
        )
        .unwrap();
        let mk = |n: usize| {
            (0..n)
                .map(|i| Violation {
                    rule: "R4",
                    path: "a.rs".into(),
                    line: i as u32 + 1,
                    message: String::new(),
                })
                .collect::<Vec<_>>()
        };

        let mut r = Report::default();
        apply_allowlist(&entries, mk(2), &mut r);
        assert!(r.clean(), "{r:?}");

        let mut r = Report::default();
        apply_allowlist(&entries, mk(3), &mut r);
        assert_eq!(r.policy_errors.len(), 1);
        assert!(r.policy_errors[0].contains("only shrinks"));

        let mut r = Report::default();
        apply_allowlist(&entries, mk(1), &mut r);
        assert_eq!(r.policy_errors.len(), 1);
        assert!(r.policy_errors[0].contains("lower the count"));

        let mut r = Report::default();
        apply_allowlist(&entries, mk(0), &mut r);
        assert!(r.policy_errors[0].contains("stale"));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "R1",
            path: "a \"b\".rs".into(),
            line: 3,
            message: "use\nDet".into(),
        });
        r.raw_counts.insert("R1", 1);
        let j = r.render_json();
        assert!(j.contains("\"rule\": \"R1\""));
        assert!(j.contains("\\\"b\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"clean\": false"));
    }
}
