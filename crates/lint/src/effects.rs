//! The effect lattice: per-function direct effects and their transitive
//! propagation over the call graph (DESIGN.md §17).
//!
//! Effects form a powerset lattice over six atoms; "inference" is two
//! steps:
//!
//! 1. **Direct effects** — token-level patterns inside one function body,
//!    the same vocabulary rules R2–R4 use (so a direct effect is exactly
//!    "this function contains a bad call *site*").
//! 2. **Propagation** — a fixpoint of `full(f) = direct(f) ∪ ⋃ full(g)`
//!    over resolved call edges `f → g`, upgrading the guarantee to "no bad
//!    call *path*". Monotone over a finite lattice, so the fixpoint exists
//!    and the worklist terminates.
//!
//! External calls contribute nothing (the atoms external code could
//! contribute — clocks, entropy, fs — are all caught as direct token
//! patterns at the call site itself). Unresolved calls also contribute
//! nothing but are *counted* and gated by the ceiling in
//! `effect-contracts.toml`; see `graph.rs` for the resolution policy.

use crate::graph::{is_keyword, CallGraph};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;
use std::ops::Range;

pub type EffectMask = u8;

pub const PANIC: EffectMask = 1 << 0;
pub const WALL_CLOCK: EffectMask = 1 << 1;
pub const ENTROPY: EffectMask = 1 << 2;
pub const UNORDERED_ITER: EffectMask = 1 << 3;
pub const UNSAFE_MEM: EffectMask = 1 << 4;
pub const BLOCKING_IO: EffectMask = 1 << 5;

pub const ALL_EFFECTS: &[(EffectMask, &str)] = &[
    (PANIC, "Panic"),
    (WALL_CLOCK, "WallClock"),
    (ENTROPY, "Entropy"),
    (UNORDERED_ITER, "UnorderedIter"),
    (UNSAFE_MEM, "UnsafeMem"),
    (BLOCKING_IO, "BlockingIo"),
];

pub fn effect_name(mask: EffectMask) -> &'static str {
    ALL_EFFECTS
        .iter()
        .find(|(m, _)| *m == mask)
        .map(|(_, n)| *n)
        .unwrap_or("?")
}

pub fn parse_effect(name: &str) -> Option<EffectMask> {
    ALL_EFFECTS.iter().find(|(_, n)| *n == name).map(|(m, _)| *m)
}

pub fn mask_names(mask: EffectMask) -> Vec<&'static str> {
    ALL_EFFECTS
        .iter()
        .filter(|(m, _)| mask & m != 0)
        .map(|(_, n)| *n)
        .collect()
}

/// One concrete occurrence of a direct effect inside a function body —
/// the "offending site" a contract violation's witness chain ends at.
#[derive(Debug, Clone)]
pub struct DirectSite {
    pub effect: EffectMask,
    pub line: u32,
    /// Human description of the pattern, e.g. "`Instant::now()`".
    pub what: String,
}

/// Direct and propagated effect sets for every function in the table,
/// index-aligned with `SymbolTable::fns`.
#[derive(Debug, Default)]
pub struct EffectSets {
    pub direct: Vec<EffectMask>,
    pub full: Vec<EffectMask>,
    /// First direct occurrence per (fn, effect) for witness reporting.
    pub sites: Vec<Vec<DirectSite>>,
}

impl EffectSets {
    /// Propagates per-function direct effects to the fixpoint
    /// `full(f) = direct(f) ∪ ⋃_{f→g} full(g)` over resolved edges.
    pub fn propagate(direct: Vec<EffectMask>, sites: Vec<Vec<DirectSite>>, graph: &CallGraph) -> EffectSets {
        let n = direct.len();
        let mut full = direct.clone();
        // Chaotic iteration to fixpoint: the lattice has height ≤ 6 per
        // node, so this loops at most a handful of times over the edges.
        let mut changed = true;
        while changed {
            changed = false;
            for caller in 0..n {
                let mut acc = full[caller];
                for &callee in &graph.edges[caller] {
                    acc |= full[callee];
                }
                if acc != full[caller] {
                    full[caller] = acc;
                    changed = true;
                }
            }
        }
        EffectSets { direct, full, sites }
    }

    /// The first recorded site of `effect` in `f`'s body, if any.
    pub fn site(&self, f: usize, effect: EffectMask) -> Option<&DirectSite> {
        self.sites[f].iter().find(|s| s.effect == effect)
    }
}

/// Identifiers that, appearing as `x :: y` heads or method names, mark a
/// blocking filesystem/IO operation. Curated for this workspace's std
/// usage plus the raw `mmap` syscalls in `kb::disk`.
const BLOCKING_IO_QUALIFIED: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("OpenOptions", "new"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
    ("fs", "read_dir"),
    ("fs", "create_dir_all"),
    ("fs", "create_dir"),
    ("fs", "remove_file"),
    ("fs", "remove_dir_all"),
    ("fs", "rename"),
    ("fs", "copy"),
    ("fs", "metadata"),
    ("fs", "canonicalize"),
    ("sys", "mmap"),
    ("sys", "munmap"),
];

const BLOCKING_IO_METHODS: &[&str] = &[
    "read_exact", "read_to_end", "read_to_string", "write_all", "sync_all", "sync_data",
    "set_len", "seek",
];

/// Scans one function's own token ranges for direct effects. `hash_idents`
/// is the file-level set of identifiers bound to *std* `HashMap`/`HashSet`
/// types (not the Det wrappers — their iteration order is insertion-
/// deterministic); `is_test` suppresses the Panic atom, matching R4's
/// "non-test code" scope.
pub fn scan_direct(
    toks: &[Tok],
    ranges: &[Range<usize>],
    hash_idents: &BTreeSet<&str>,
    is_test: bool,
) -> (EffectMask, Vec<DirectSite>) {
    let mut mask: EffectMask = 0;
    let mut sites: Vec<DirectSite> = Vec::new();
    let add = |mask: &mut EffectMask, sites: &mut Vec<DirectSite>, e: EffectMask, line: u32, what: String| {
        if *mask & e == 0 {
            sites.push(DirectSite { effect: e, line, what });
        }
        *mask |= e;
    };

    for r in ranges {
        let mut i = r.start;
        while i < r.end {
            let t = &toks[i];

            // ── Panic ──
            if !is_test {
                if t.is_punct(".")
                    && i + 2 < r.end
                    && toks[i + 1].kind == TokKind::Ident
                    && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
                    && toks[i + 2].is_punct("(")
                    && !(i > 0 && toks[i - 1].is_ident("self"))
                {
                    add(&mut mask, &mut sites, PANIC, toks[i + 1].line, format!("`.{}()`", toks[i + 1].text));
                }
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                    && i + 1 < r.end
                    && toks[i + 1].is_punct("!")
                {
                    add(&mut mask, &mut sites, PANIC, t.line, format!("`{}!`", t.text));
                }
                // Indexing `expr[…]`: `[` directly after an identifier,
                // `)` or `]` is an index expression; after a keyword,
                // punctuation or `#` it is a pattern/type/array/attr.
                if t.is_punct("[") && i > r.start {
                    let prev = &toks[i - 1];
                    let indexes = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                        || prev.is_punct(")")
                        || prev.is_punct("]");
                    if indexes {
                        add(&mut mask, &mut sites, PANIC, t.line, "`[…]` indexing".to_string());
                    }
                }
            }

            // ── WallClock ──
            if t.kind == TokKind::Ident
                && (t.text == "Instant" || t.text == "SystemTime")
                && i + 2 < r.end
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_ident("now")
            {
                add(&mut mask, &mut sites, WALL_CLOCK, t.line, format!("`{}::now()`", t.text));
            }

            // ── Entropy ──
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
            {
                add(&mut mask, &mut sites, ENTROPY, t.line, format!("`{}`", t.text));
            }

            // ── UnorderedIter ──
            if t.kind == TokKind::Ident
                && hash_idents.contains(t.text.as_str())
                && i + 2 < r.end
                && toks[i + 1].is_punct(".")
                && toks[i + 2].kind == TokKind::Ident
                && matches!(
                    toks[i + 2].text.as_str(),
                    "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut"
                        | "into_values" | "drain"
                )
            {
                add(
                    &mut mask,
                    &mut sites,
                    UNORDERED_ITER,
                    toks[i + 2].line,
                    format!("`{}.{}()` over a std hash map", t.text, toks[i + 2].text),
                );
            }

            // ── UnsafeMem ──
            if t.is_ident("unsafe") {
                add(&mut mask, &mut sites, UNSAFE_MEM, t.line, "`unsafe` block".to_string());
            }

            // ── BlockingIo ──
            if t.kind == TokKind::Ident && i + 2 < r.end && toks[i + 1].is_punct("::") {
                let head = t.text.as_str();
                let tail = toks[i + 2].text.as_str();
                if toks[i + 2].kind == TokKind::Ident
                    && BLOCKING_IO_QUALIFIED.contains(&(head, tail))
                {
                    add(&mut mask, &mut sites, BLOCKING_IO, t.line, format!("`{head}::{tail}`"));
                }
            }
            if t.is_punct(".")
                && i + 2 < r.end
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 2].is_punct("(")
                && BLOCKING_IO_METHODS.contains(&toks[i + 1].text.as_str())
            {
                add(
                    &mut mask,
                    &mut sites,
                    BLOCKING_IO,
                    toks[i + 1].line,
                    format!("`.{}()`", toks[i + 1].text),
                );
            }

            i += 1;
        }
    }
    (mask, sites)
}

/// File-level set of identifiers bound to *std* hash containers (the
/// `UnorderedIter` receivers). Unlike R2's helper this excludes the Det
/// wrappers, whose iteration order is deterministic given insertion order.
pub fn std_hash_idents(toks: &[Tok]) -> BTreeSet<&str> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            let window = &toks[i + 2..toks.len().min(i + 8)];
            if window
                .iter()
                .take_while(|t| !t.is_punct(",") && !t.is_punct(")") && !t.is_punct("="))
                .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
            {
                set.insert(toks[i].text.as_str());
            }
        }
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 3 < toks.len()
                && toks[j].kind == TokKind::Ident
                && toks[j + 1].is_punct("=")
                && (toks[j + 2].is_ident("HashMap") || toks[j + 2].is_ident("HashSet"))
                && toks[j + 3].is_punct("::")
            {
                set.insert(toks[j].text.as_str());
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> (EffectMask, Vec<DirectSite>) {
        let toks = lex(src);
        let hash = std_hash_idents(&toks);
        scan_direct(&toks, std::slice::from_ref(&(0..toks.len())), &hash, false)
    }

    #[test]
    fn panic_family_detected() {
        let (m, sites) = scan("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(m, PANIC);
        assert_eq!(sites.len(), 1);
        let (m, _) = scan("fn f() { panic!(\"boom\") }");
        assert_eq!(m, PANIC);
        let (m, _) = scan("fn f(v: &[u32]) -> u32 { v[0] }");
        assert_eq!(m, PANIC);
        let (m, _) = scan("fn f(&mut self) { self.expect(\".\"); }");
        assert_eq!(m, 0, "parser combinator `self.expect` is not a panic");
    }

    #[test]
    fn indexing_heuristic_skips_types_patterns_attrs() {
        let (m, _) = scan("fn f(x: [u8; 4]) -> Vec<[u8; 2]> { let [a, b] = [1, 2]; vec![a, b] }");
        assert_eq!(m, 0, "array types, slice patterns, literals and macros are not indexing");
        let (m, _) = scan("fn f(v: Vec<u32>, i: usize) -> u32 { v[i] }");
        assert_eq!(m, PANIC);
        let (m, _) = scan("fn f(v: Vec<Vec<u32>>) -> u32 { v[0][1] }");
        assert_eq!(m, PANIC);
    }

    #[test]
    fn clock_entropy_unsafe_io_detected() {
        let (m, _) = scan("fn f() { let t = Instant::now(); }");
        assert_eq!(m, WALL_CLOCK);
        let (m, _) = scan("fn f() { let r = rand::thread_rng(); }");
        assert_eq!(m, ENTROPY);
        let (m, _) = scan("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(m, UNSAFE_MEM);
        let (m, _) = scan("fn f(p: &Path) { let _ = File::open(p); }");
        assert_eq!(m, BLOCKING_IO);
        let (m, _) = scan("fn f(file: &mut File, buf: &mut [u8]) { file.read_exact(buf); }");
        assert!(m & BLOCKING_IO != 0);
    }

    #[test]
    fn unordered_iter_only_fires_on_std_maps() {
        let (m, _) = scan("fn f(m: &HashMap<u32, u32>) { for (k, v) in m.iter() {} }");
        assert!(m & UNORDERED_ITER != 0);
        let (m, _) = scan("fn f(m: &DetHashMap<u32, u32>) { for (k, v) in m.iter() {} }");
        assert_eq!(m & UNORDERED_ITER, 0);
    }

    #[test]
    fn test_fns_skip_panic_but_keep_clock() {
        let toks = lex("fn f() { x.unwrap(); let t = Instant::now(); }");
        let hash = BTreeSet::new();
        let (m, _) = scan_direct(&toks, std::slice::from_ref(&(0..toks.len())), &hash, true);
        assert_eq!(m, WALL_CLOCK);
    }

    #[test]
    fn propagation_reaches_fixpoint_through_cycles() {
        // 0 → 1 → 2 → 0 (cycle), 2 → 3. Effect seeded only at 3.
        let graph = CallGraph {
            edges: vec![vec![1], vec![2], vec![0, 3], vec![]],
            resolved_calls: 4,
            external_calls: 0,
            unresolved: Vec::new(),
        };
        let sets = EffectSets::propagate(vec![0, 0, 0, WALL_CLOCK], vec![vec![]; 4], &graph);
        assert_eq!(sets.full, vec![WALL_CLOCK; 4]);
        assert_eq!(sets.direct, vec![0, 0, 0, WALL_CLOCK]);
    }

    #[test]
    fn effect_names_round_trip() {
        for &(mask, name) in ALL_EFFECTS {
            assert_eq!(parse_effect(name), Some(mask));
            assert_eq!(effect_name(mask), name);
        }
        assert_eq!(parse_effect("Nope"), None);
        assert_eq!(mask_names(PANIC | BLOCKING_IO), vec!["Panic", "BlockingIo"]);
    }
}
