//! CLI: `minoaner-lint <check|effects> [--json] [--root PATH] [...]`
//!
//! * `check [--json] [--root PATH] [--allow PATH]` — token rules R1–R5
//!   against `lint-allow.toml`.
//! * `effects [--json] [--root PATH] [--contracts PATH]` — call-graph
//!   effect analysis against `effect-contracts.toml`.
//!
//! Exit codes: 0 clean, 1 violations or policy errors, 2 usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: minoaner-lint check [--json] [--root PATH] [--allow PATH]\n\
         \x20      minoaner-lint effects [--json] [--root PATH] [--contracts PATH]\n\
         \n\
         Rules (DESIGN.md §12):"
    );
    for (id, desc) in minoaner_lint::rules::RULES {
        eprintln!("  {id}: {desc}");
    }
    eprintln!("\nEffect contracts are documented in DESIGN.md §17.");
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p minoaner-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(d) => {
            let p = PathBuf::from(d);
            p.parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "check" && cmd != "effects" {
        return usage();
    }

    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut conf: Option<PathBuf> = None;
    let conf_flag = if cmd == "check" { "--allow" } else { "--contracts" };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            a if a == conf_flag => match args.next() {
                Some(p) => conf = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let (text, json_text, clean) = if cmd == "check" {
        let conf = conf.unwrap_or_else(|| root.join("lint-allow.toml"));
        match minoaner_lint::run_check(&root, &conf) {
            Ok(report) => (report.render_text(), report.render_json(), report.clean()),
            Err(e) => {
                eprintln!("minoaner-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let conf = conf.unwrap_or_else(|| root.join("effect-contracts.toml"));
        match minoaner_lint::run_effects(&root, &conf) {
            Ok(report) => (report.render_text(), report.render_json(), report.clean()),
            Err(e) => {
                eprintln!("minoaner-lint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if json {
        println!("{json_text}");
    } else {
        print!("{text}");
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
