//! CLI: `minoaner-lint check [--json] [--root PATH] [--allow PATH]`
//!
//! Exit codes: 0 clean, 1 violations or allowlist policy errors, 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: minoaner-lint check [--json] [--root PATH] [--allow PATH]\n\
         \n\
         Rules (DESIGN.md §12):"
    );
    for (id, desc) in minoaner_lint::rules::RULES {
        eprintln!("  {id}: {desc}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "check" {
        return usage();
    }

    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--allow" => match args.next() {
                Some(p) => allow = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let root = root.unwrap_or_else(|| {
        // When run via `cargo run -p minoaner-lint`, the manifest dir is
        // crates/lint; the workspace root is two levels up.
        match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(d) => {
                let p = PathBuf::from(d);
                p.parent()
                    .and_then(|p| p.parent())
                    .map(|p| p.to_path_buf())
                    .unwrap_or(p)
            }
            Err(_) => PathBuf::from("."),
        }
    });
    let allow = allow.unwrap_or_else(|| root.join("lint-allow.toml"));

    match minoaner_lint::run_check(&root, &allow) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("minoaner-lint: {e}");
            ExitCode::from(2)
        }
    }
}
