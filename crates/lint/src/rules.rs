//! The four determinism rules. Each rule takes the token stream of one
//! file plus its classification and appends `Violation`s.
//!
//! The rules are deliberately token-level heuristics (see `lexer.rs` for
//! why there is no `syn`): they are tuned to have zero false positives on
//! this workspace's idioms, and anything genuinely unfixable goes in
//! `lint-allow.toml` with a reason.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// How a file participates in each rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a workspace crate (or the root `src/`): all rules apply.
    Library,
    /// `tests/`, `benches/`, `examples/`: only R1 applies (determinism of
    /// the product is the contract; test-local timing and unwraps are fine).
    TestOrBench,
}

pub const RULES: &[(&str, &str)] = &[
    ("R1", "no std::collections::HashMap/HashSet — use minoaner_det::DetHashMap/DetHashSet"),
    ("R2", "no f64/f32 accumulation over hash-map iteration — sort keys first"),
    ("R3", "no wall-clock or entropy outside timing/trace/fault-inject modules"),
    ("R4", "no unwrap()/expect() in library code outside the ratcheted allowlist"),
    ("R5", "every `unsafe` block/fn/impl must carry a `// SAFETY:` comment on the preceding line"),
    ("R6", "no direct std::fs/File/OpenOptions in durable-path modules — route I/O through the Vfs"),
];

/// The modules whose writes must survive a crash (checkpoint barriers,
/// spill runs, the `.mkb` container, job status files). Every byte they
/// persist has to flow through the `Vfs` seam so the chaos harness can
/// fault-inject it — a direct `std::fs` call here is a blind spot the
/// ENOSPC/EIO sweep cannot reach.
const R6_DURABLE_PATHS: &[&str] = &[
    "crates/dataflow/src/checkpoint.rs",
    "crates/dataflow/src/spill.rs",
    "crates/jobs/src/control.rs",
    "crates/kb/src/disk.rs",
];

pub fn run_all(path: &str, class: FileClass, src: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut out = Vec::new();
    r1_std_hash(path, toks, &mut out);
    if class == FileClass::Library {
        r2_float_accum(path, toks, &mut out);
        r3_wallclock_entropy(path, toks, &mut out);
        r4_unwrap(path, toks, &mut out);
        r5_unsafe_safety(path, src, toks, &mut out);
        r6_vfs_only(path, toks, &mut out);
    }
    out
}

/// R1: any `HashMap` / `HashSet` identifier. After the workspace-wide
/// migration the only legitimate mentions live in `crates/det` (the
/// wrapper itself), which is blanket-allowed in `lint-allow.toml`.
fn r1_std_hash(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                rule: "R1",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` has a randomly-seeded default hasher; use `minoaner_det::Det{}`",
                    t.text, t.text
                ),
            });
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "DetHashMap", "DetHashSet"];
const HASH_CTORS: &[&str] = &[
    "HashMap",
    "HashSet",
    "DetHashMap",
    "DetHashSet",
    "map_with_capacity",
    "set_with_capacity",
];
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "values", "values_mut", "into_values", "keys", "drain",
];

/// R2: f64/f32 accumulation whose order depends on hash-map iteration.
/// Even `DetHashMap` iteration order depends on insertion history, so a
/// float sum over it is not stable across worker counts — the exact bug
/// PR 3 fixed in the γ kernel. Detected shapes:
///
///   1. `map.values().…sum::<f64>()` / `…fold(0.0, …)` chains where the
///      receiver identifier is hash-typed in this file;
///   2. `for … in map.iter() { acc += … }` where `acc` is float-typed in
///      this file.
fn r2_float_accum(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let hash_idents = collect_hash_idents(toks);
    let float_idents = collect_float_idents(toks);

    // Shape 1: iterator chains off a hash-typed receiver.
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind == TokKind::Ident
            && hash_idents.contains(toks[i].text.as_str())
            && toks[i + 1].is_punct(".")
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
        {
            if let Some(line) = float_reduce_in_statement(toks, i + 3) {
                out.push(Violation {
                    rule: "R2",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "float reduction over `{}` iteration; collect + sort keys before summing",
                        toks[i].text
                    ),
                });
                // Skip past this receiver so a chain is reported once.
                i += 3;
            }
        }
        i += 1;
    }

    // Shape 2: `+=` on a float accumulator inside a for-loop over a hash map.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("for") {
            if let Some((header_end, body_end)) = for_loop_spans(toks, i) {
                let header = &toks[i..header_end];
                let iterates_hash = header.windows(3).any(|w| {
                    w[0].kind == TokKind::Ident
                        && hash_idents.contains(w[0].text.as_str())
                        && w[1].is_punct(".")
                        && ITER_METHODS.contains(&w[2].text.as_str())
                }) || header.windows(2).any(|w| {
                    w[0].is_punct("&")
                        && w[1].kind == TokKind::Ident
                        && hash_idents.contains(w[1].text.as_str())
                });
                if iterates_hash {
                    for w in toks[header_end..body_end].windows(2) {
                        if w[0].kind == TokKind::Ident
                            && float_idents.contains(w[0].text.as_str())
                            && w[1].is_punct("+=")
                        {
                            out.push(Violation {
                                rule: "R2",
                                path: path.to_string(),
                                line: w[1].line,
                                message: format!(
                                    "`{} +=` inside iteration over a hash map; \
                                     accumulate in sorted key order",
                                    w[0].text
                                ),
                            });
                        }
                    }
                }
                i = header_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Identifiers bound to hash-container types anywhere in this file:
/// `x: [&[mut]] [path::]DetHashMap<…>` annotations (incl. fn params) and
/// `let [mut] x … = <hash ctor>` initialisations.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<&str> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : … HashType` within a short window.
        if i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            let window = &toks[i + 2..toks.len().min(i + 8)];
            if window
                .iter()
                .take_while(|t| !t.is_punct(",") && !t.is_punct(")") && !t.is_punct("="))
                .any(|t| t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()))
            {
                set.insert(toks[i].text.as_str());
            }
        }
        // `let [mut] name … = Ctor…`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.as_str();
                // Find `=` before the statement ends.
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct("=") && !toks[k].is_punct(";") {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct("=") {
                    let window = &toks[k + 1..toks.len().min(k + 7)];
                    if window
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && HASH_CTORS.contains(&t.text.as_str()))
                    {
                        set.insert(name);
                    }
                }
            }
        }
    }
    set
}

/// Identifiers that are f64/f32: `x: f64` annotations and
/// `let [mut] x = 0.0…` style initialisations.
fn collect_float_idents(toks: &[Tok]) -> BTreeSet<&str> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if i + 2 < toks.len()
            && toks[i + 1].is_punct(":")
            && (toks[i + 2].is_ident("f64") || toks[i + 2].is_ident("f32"))
        {
            set.insert(toks[i].text.as_str());
        }
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 2 < toks.len()
                && toks[j].kind == TokKind::Ident
                && toks[j + 1].is_punct("=")
                && toks[j + 2].kind == TokKind::Num
                && is_float_literal(&toks[j + 2].text)
            {
                set.insert(toks[j].text.as_str());
            }
        }
    }
    set
}

fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.contains("f64") || text.contains("f32")
}

/// Scan a method chain from `start` to the end of the statement looking
/// for a float-evident reduction: `sum::<f64>`, `product::<f32>`, or
/// `fold(0.0…`. Returns the line of the reduction if found.
fn float_reduce_in_statement(toks: &[Tok], start: usize) -> Option<u32> {
    let mut depth: i32 = 0;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return None;
                    }
                }
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        if t.kind == TokKind::Ident && (t.text == "sum" || t.text == "product") {
            // sum::<f64>(…)
            if i + 4 < toks.len()
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_punct("<")
                && (toks[i + 3].is_ident("f64") || toks[i + 3].is_ident("f32"))
            {
                return Some(t.line);
            }
        }
        if t.is_ident("fold")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("(")
            && toks[i + 2].kind == TokKind::Num
            && is_float_literal(&toks[i + 2].text)
        {
            return Some(t.line);
        }
        i += 1;
    }
    None
}

/// For `toks[start] == "for"`, return (index of `{` opening the body,
/// index one past the matching `}`).
fn for_loop_spans(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut depth: i32 = 0;
    let mut i = start + 1;
    // Header runs to the first `{` at depth 0 (struct literals are not
    // legal unparenthesised in a for-expression, so this is unambiguous).
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let header_end = i;
    let mut brace: i32 = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        return Some((header_end, i + 1));
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// R3: wall-clock reads and entropy-seeded RNG. Timing/trace and
/// fault-inject modules are blanket-allowed via `lint-allow.toml`.
fn r3_wallclock_entropy(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.kind != TokKind::Ident {
            None
        } else if (t.text == "Instant" || t.text == "SystemTime")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
        {
            Some(format!("{}::now()", t.text))
        } else if t.text == "thread_rng" || t.text == "from_entropy" || t.text == "OsRng" {
            Some(t.text.clone())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(Violation {
                rule: "R3",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{what}` is non-deterministic; only timing/trace and fault-inject \
                     modules may read the clock or entropy"
                ),
            });
        }
    }
}

/// R4: `.unwrap()` / `.expect(` outside `#[cfg(test)]` modules. Counts
/// are ratcheted per file through `lint-allow.toml`.
fn r4_unwrap(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let test_spans = cfg_test_spans(toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].is_punct(".")
            && toks[i + 1].kind == TokKind::Ident
            && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
            && toks[i + 2].is_punct("(")
            && !in_test(i)
            // `self.expect(…)` is a method on the receiver type (e.g. the
            // Turtle parser's `expect` combinator), not Option/Result.
            && !(i > 0 && toks[i - 1].is_ident("self"))
        {
            out.push(Violation {
                rule: "R4",
                path: path.to_string(),
                line: toks[i + 1].line,
                message: format!(
                    "`.{}()` in library code; return a Result or ratchet it in lint-allow.toml",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// R5: each `unsafe` keyword (block, fn, impl, trait) must be justified
/// by a `// SAFETY:` comment in the contiguous comment block immediately
/// above its line. Two `unsafe impl`s stacked under one comment each need
/// their own justification — the audit is per `unsafe`, not per block of
/// code. Pre-existing debt is ratcheted per file via `lint-allow.toml`.
fn r5_unsafe_safety(path: &str, src: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let test_spans = cfg_test_spans(toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);
    let lines: Vec<&str> = src.lines().collect();
    let mut flagged_lines = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || in_test(i) || !flagged_lines.insert(t.line) {
            continue;
        }
        // Walk upward through the contiguous `//` comment block (doc
        // comments count too) looking for a SAFETY marker.
        let mut ok = false;
        let mut ln = t.line as usize; // 1-based; lines[ln - 2] is the line above
        while ln >= 2 {
            let above = lines.get(ln - 2).map(|l| l.trim()).unwrap_or("");
            if !above.starts_with("//") {
                break;
            }
            let body = above.trim_start_matches('/').trim_start_matches('!').trim_start();
            if body.starts_with("SAFETY:") {
                ok = true;
                break;
            }
            ln -= 1;
        }
        if !ok {
            out.push(Violation {
                rule: "R5",
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on the preceding line; \
                          state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// R6: direct filesystem access in one of the [`R6_DURABLE_PATHS`]
/// modules. Detected shapes: the path segment `fs` (any `…::fs` /
/// `fs::…` mention, including `use std::fs…`), and `File::` /
/// `OpenOptions::` constructor calls. Test modules are exempt — tests
/// exercise the real filesystem to verify the Vfs against it. The one
/// legitimate residue (the mmap site needs a real descriptor) is
/// ratcheted in `lint-allow.toml`.
fn r6_vfs_only(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    if !R6_DURABLE_PATHS.contains(&path) {
        return;
    }
    let test_spans = cfg_test_spans(toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(i) {
            continue;
        }
        let hit = match t.text.as_str() {
            "fs" => {
                (i > 0 && toks[i - 1].is_punct("::"))
                    || (i + 1 < toks.len() && toks[i + 1].is_punct("::"))
            }
            "File" | "OpenOptions" => i + 1 < toks.len() && toks[i + 1].is_punct("::"),
            _ => false,
        };
        if hit {
            out.push(Violation {
                rule: "R6",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "direct `{}` filesystem access in a durable-path module; route it \
                     through the `Vfs` so the chaos sweep can fault-inject it",
                    t.text
                ),
            });
        }
    }
}

/// Token spans of `#[cfg(test)] mod … { … }` (and `cfg(all(test, …))`)
/// bodies, plus `#[test] fn` / `#[cfg(test)] fn` items.
pub(crate) fn cfg_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let attr_start = j;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            let is_test_attr = attr.first().is_some_and(|t| t.is_ident("test"))
                || (attr.first().is_some_and(|t| t.is_ident("cfg"))
                    && attr.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                // Skip any further attributes, then find the item's body.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 0;
                    k += 1;
                    loop {
                        if toks[k].is_punct("[") {
                            d += 1;
                        } else if toks[k].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                        if k >= toks.len() {
                            break;
                        }
                    }
                }
                // Find the opening brace of the item and its match.
                let mut brace: i32 = 0;
                let mut opened = false;
                let body_start = k;
                while k < toks.len() {
                    if toks[k].is_punct("{") {
                        brace += 1;
                        opened = true;
                    } else if toks[k].is_punct("}") {
                        brace -= 1;
                        if opened && brace == 0 {
                            spans.push((body_start, k + 1));
                            break;
                        }
                    } else if toks[k].is_punct(";") && !opened {
                        // Item without a body (e.g. `#[cfg(test)] use …;`).
                        spans.push((body_start, k + 1));
                        break;
                    }
                    k += 1;
                }
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<Violation> {
        run_all("test.rs", FileClass::Library, src, &lex(src))
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn r1_flags_std_hash() {
        let v = check("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }");
        assert_eq!(rules_of(&v), ["R1", "R1"]);
    }

    #[test]
    fn r1_ignores_det_and_btree() {
        let v = check("use minoaner_det::DetHashMap;\nuse std::collections::BTreeMap;");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r2_flags_sum_over_map_values() {
        let v = check(
            "fn f(weights: &DetHashMap<u32, f64>) -> f64 {\n\
             weights.values().sum::<f64>()\n}",
        );
        assert_eq!(rules_of(&v), ["R2"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn r2_flags_fold_and_loop_accum() {
        let v = check(
            "fn f(m: DetHashMap<u32, f64>) {\n\
             let a: f64 = m.iter().fold(0.0, |acc, (_, w)| acc + w);\n\
             let mut total = 0.0;\n\
             for (_, w) in m.iter() { total += w; }\n}",
        );
        assert_eq!(rules_of(&v), ["R2", "R2"]);
    }

    #[test]
    fn r2_ignores_sorted_and_int_reduction() {
        let v = check(
            "fn f(m: &DetHashMap<u32, f64>) -> (usize, f64) {\n\
             let n: usize = m.values().count();\n\
             let mut keys: Vec<u32> = m.keys().copied().collect();\n\
             keys.sort_unstable();\n\
             let s: f64 = keys.iter().map(|k| m[k]).sum();\n\
             (n, s)\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r3_flags_wallclock_and_entropy() {
        let v = check(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             let r = rand::thread_rng(); }",
        );
        assert_eq!(rules_of(&v), ["R3", "R3", "R3"]);
    }

    #[test]
    fn r4_flags_unwrap_outside_tests_only() {
        let v = check(
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
             #[cfg(test)]\nmod tests {\n\
             fn h(x: Option<u32>) -> u32 { x.unwrap() }\n}",
        );
        assert_eq!(rules_of(&v), ["R4", "R4"]);
    }

    #[test]
    fn r4_ignores_unwrap_or() {
        let v = check("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r4_ignores_parser_combinators_on_self() {
        let v = check("fn f(&mut self) -> Result<(), E> { self.expect(\".\")?; Ok(()) }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tests_and_benches_only_get_r1() {
        let src = "fn f() { let t = Instant::now(); let x: Option<u32> = None; x.unwrap(); }";
        assert!(run_all("t.rs", FileClass::TestOrBench, src, &lex(src)).is_empty());
        let src = "use std::collections::HashMap;";
        assert_eq!(run_all("t.rs", FileClass::TestOrBench, src, &lex(src)).len(), 1);
    }

    #[test]
    fn r5_flags_uncommented_unsafe() {
        let v = check("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}");
        assert_eq!(rules_of(&v), ["R5"]);
        assert_eq!(v[0].line, 2);
        let v = check("unsafe impl Send for X {}\n");
        assert_eq!(rules_of(&v), ["R5"]);
    }

    #[test]
    fn r5_accepts_safety_comment_block() {
        let v = check(
            "fn f(p: *const u8) -> u8 {\n\
             \x20   // SAFETY: caller guarantees p is valid for reads.\n\
             \x20   unsafe { *p }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
        // The marker may sit anywhere in the contiguous comment block.
        let v = check(
            "// SAFETY: the mapping is read-only bytes.\n\
             // No interior mutability anywhere.\n\
             unsafe impl Send for X {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r5_requires_one_comment_per_unsafe() {
        // The second impl's preceding line is code, not a comment.
        let v = check(
            "// SAFETY: read-only bytes.\n\
             unsafe impl Send for X {}\n\
             unsafe impl Sync for X {}\n",
        );
        assert_eq!(rules_of(&v), ["R5"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn r6_flags_direct_fs_only_in_durable_modules() {
        let src = "use std::fs::File;\n\
                   fn f(p: &std::path::Path) { let _ = std::fs::write(p, b\"x\"); }\n\
                   fn g(p: &std::path::Path) { let _ = File::create(p); }\n\
                   #[cfg(test)]\nmod tests {\n    fn h() { let _ = std::fs::read(\"x\"); }\n}";
        let toks = lex(src);
        let v = run_all("crates/dataflow/src/spill.rs", FileClass::Library, src, &toks);
        assert_eq!(rules_of(&v), ["R6", "R6", "R6"], "{v:#?}");
        assert_eq!((v[0].line, v[1].line, v[2].line), (1, 2, 3));
        // The same source anywhere else is not a durable path: no R6.
        let v = run_all("crates/kb/src/parser.rs", FileClass::Library, src, &toks);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn r6_ignores_vfs_locals_and_other_idents() {
        let src = "fn f(disk: &dyn Vfs) { disk.write_file(p, b); }\n\
                   fn g() { let file = open(); MkbFile::open(p); }";
        let toks = lex(src);
        let v = run_all("crates/kb/src/disk.rs", FileClass::Library, src, &toks);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn r5_skips_test_code_and_strings() {
        let v = check(
            "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
        let v = check("fn f() -> &'static str { \"unsafe\" }");
        assert!(v.is_empty(), "{v:?}");
    }
}
