//! A minimal JSON document model with an exact-round-trip guarantee.
//!
//! The lint crate must build with zero dependencies (no `serde_json`), but
//! both `check` and `effects` emit versioned machine-readable reports that
//! CI archives and downstream tooling parses. Reports are therefore built
//! as [`Json`] values and printed through one canonical pretty-printer, so
//! `parse(render(v)) == v` and `render(parse(s)) == s` for every report the
//! linter writes — the same contract `RunTrace::to_json`/`from_json` gives
//! the dataflow traces.
//!
//! Deliberately not a general JSON library: numbers are restricted to the
//! integers the reports actually contain (`i64`), and object key order is
//! preserved as written (reports choose a stable, documented order).

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object; the printer emits keys in this order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: usize) -> Json {
        Json::Num(n as i64)
    }

    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Canonical pretty print: two-space indent, `": "` after keys, arrays
    /// and objects expanded one element per line (empty ones inline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(src, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match b {
        b'n' => expect_lit(bytes, pos, "null", Json::Null),
        b't' => expect_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => expect_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(src, bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(src, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            src[start..*pos]
                .parse::<i64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        other => Err(format!("unexpected byte {:?} at {}", other as char, pos)),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = src
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let c = src[*pos..].chars().next().ok_or("bad utf-8")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(1)),
            ("name".into(), Json::str("a \"b\"\nc\td")),
            ("flag".into(), Json::Bool(false)),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(-3), Json::Null, Json::str("x")]),
            ),
        ])
    }

    #[test]
    fn render_parse_is_identity() {
        let v = sample();
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // And the re-render is byte-identical: exact round trip.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn key_order_is_preserved() {
        let text = sample().render();
        let sv = text.find("schema_version").unwrap();
        let items = text.find("items").unwrap();
        assert!(sv < items);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("schema_version").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("items").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert!(v.get("missing").is_none());
    }
}
