//! Workspace symbol table and call graph, built on the hand-rolled lexer.
//!
//! The effect analysis (DESIGN.md §17) needs to know, for every function in
//! the workspace, *which other workspace functions it can call*. Without
//! `syn` or name-resolution machinery this is necessarily a heuristic, so
//! the design goal is a documented, *auditable* approximation:
//!
//! * Item structure (modules, `impl`/`trait` blocks, nested fns) is parsed
//!   exactly — brace matching over the token stream is reliable.
//! * Call sites are resolved by a fixed policy (see [`SymbolTable::resolve`]):
//!   free functions by module-then-crate-then-unique-name, qualified paths
//!   by suffix match, methods by receiver type where a `self` receiver, a
//!   typed local, or a typed parameter makes the type inferable.
//! * Everything the policy cannot resolve is **counted, never dropped**:
//!   call sites that plausibly target workspace code but resolve to zero or
//!   several candidates are reported as *unresolved* and gated by a
//!   ratchet-down ceiling in `effect-contracts.toml`, so resolution
//!   coverage can only improve.
//! * Calls whose target provably is not workspace code (no symbol with
//!   that name anywhere, or a receiver-less call to a ubiquitous std
//!   method like `len`/`push`) are classified *external* and assumed
//!   effect-free — external effects the wall cares about (clocks, entropy,
//!   fs) are caught as token-level *direct* effects instead (`effects.rs`).

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Receiver-less method names assumed to target std/core types. A call
/// `x.len()` with no inferable receiver type is *external*, not
/// unresolved, even if some workspace type also has a `len` — otherwise
/// every Vec/slice call in the tree would drown the unresolved count.
/// Typed receivers still resolve exactly through the `(type, method)`
/// index, so workspace methods with these names are not lost.
const COMMON_STD_METHODS: &[&str] = &[
    "len", "is_empty", "get", "get_mut", "iter", "iter_mut", "into_iter", "push", "pop",
    "insert", "remove", "contains", "contains_key", "clear", "extend", "append", "next",
    "clone", "to_string", "to_vec", "to_owned", "as_ref", "as_mut", "as_str", "as_bytes",
    "as_slice", "into", "from", "new", "default", "fmt", "eq", "cmp", "partial_cmp", "hash",
    "drop", "map", "and_then", "or_else", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
    "ok", "err", "is_some", "is_none", "is_ok", "is_err", "take", "replace", "split",
    "join", "trim", "starts_with", "ends_with", "parse", "collect", "filter", "filter_map",
    "flat_map", "fold", "sum", "product", "count", "min", "max", "rev", "zip", "enumerate",
    "chain", "any", "all", "find", "position", "sort", "sort_by", "sort_by_key",
    "sort_unstable", "sort_unstable_by", "sort_unstable_by_key", "binary_search",
    "binary_search_by", "dedup", "windows", "chunks", "first", "last", "keys", "values",
    "entry", "or_insert", "or_insert_with", "or_default", "write", "read", "flush", "lines",
    "bytes", "chars", "copied", "cloned", "min_by", "max_by", "min_by_key", "max_by_key",
    "abs", "powi", "powf", "sqrt", "floor", "ceil", "round", "to_le_bytes", "to_be_bytes",
    "wrapping_add", "wrapping_mul", "saturating_add", "saturating_sub", "checked_add",
    "checked_sub", "checked_mul", "checked_div", "load", "store", "fetch_add", "swap",
    "lock", "send", "recv", "try_recv", "is_char_boundary", "char_indices", "retain",
    "truncate", "resize", "reserve", "with_capacity", "drain", "splice", "range", "rem_euclid",
];

/// Rust keywords that can directly precede `[` or `(` without forming an
/// index/call expression.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// How a local variable's type became known to the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(…)` — the impl block's type.
    SelfVal,
    /// Receiver is a local/param with an inferable type annotation.
    Typed(String),
    /// Chained call, literal, or untyped local.
    Unknown,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawCall {
    /// `foo(…)` — unqualified free-function call.
    Bare { name: String, line: u32 },
    /// `a::b::f(…)` — path-qualified call (head already normalized:
    /// `crate`/`self`/`super`/`Self` rewritten by the scanner).
    Qualified { segs: Vec<String>, line: u32 },
    /// `recv.method(…)`.
    Method { recv: Recv, name: String, line: u32 },
}

impl RawCall {
    pub fn line(&self) -> u32 {
        match self {
            RawCall::Bare { line, .. }
            | RawCall::Qualified { line, .. }
            | RawCall::Method { line, .. } => *line,
        }
    }

    pub fn display(&self) -> String {
        match self {
            RawCall::Bare { name, .. } => format!("{name}()"),
            RawCall::Qualified { segs, .. } => format!("{}()", segs.join("::")),
            RawCall::Method { name, .. } => format!(".{name}()"),
        }
    }
}

/// One function (free fn, method, trait default, foreign decl) in the
/// workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Fully-qualified path, e.g. `minoaner_kb::disk::Mapping::map`.
    pub path: String,
    pub name: String,
    /// `impl`/`trait` block type the fn is a method of, if any.
    pub self_ty: Option<String>,
    /// Enclosing module path, e.g. `minoaner_kb::disk`.
    pub module: String,
    pub krate: String,
    /// Workspace-relative file.
    pub file: String,
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]`, or in a test/bench/example file.
    pub is_test: bool,
    /// Token span of the body (`{`..`}` inclusive) in the file's stream;
    /// `None` for bodyless declarations (trait methods, foreign fns).
    pub body: Option<Range<usize>>,
    /// Call sites found in the body (nested fns excluded — they own theirs).
    pub calls: Vec<RawCall>,
}

/// An unresolved call site: plausibly targets workspace code, but the
/// resolution policy could not pick a unique callee.
#[derive(Debug, Clone)]
pub struct UnresolvedCall {
    pub caller: usize,
    pub call: RawCall,
    /// Number of workspace candidates (0 = known workspace name used in a
    /// form we cannot place, >1 = ambiguous).
    pub candidates: usize,
}

#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnDef>,
    /// Free functions by bare name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by `(self type, name)`.
    by_method: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by bare name (all types).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Every `self_ty` seen — used to tell "workspace type, unknown
    /// method" (unresolved) from "foreign type" (external).
    types: BTreeSet<String>,
}

/// The resolved call graph: adjacency (deduplicated, insertion-ordered)
/// plus the unresolved remainder.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[f]` = indices of functions `f` provably calls.
    pub edges: Vec<Vec<usize>>,
    pub resolved_calls: usize,
    pub external_calls: usize,
    pub unresolved: Vec<UnresolvedCall>,
}

impl SymbolTable {
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    pub fn lookup_path(&self, path: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.path == path)
    }

    fn insert(&mut self, def: FnDef) -> usize {
        let id = self.fns.len();
        match &def.self_ty {
            Some(ty) => {
                self.by_method
                    .entry((ty.clone(), def.name.clone()))
                    .or_default()
                    .push(id);
                self.methods_by_name.entry(def.name.clone()).or_default().push(id);
                self.types.insert(ty.clone());
            }
            None => {
                self.by_name.entry(def.name.clone()).or_default().push(id);
            }
        }
        self.fns.push(def);
        id
    }

    /// Applies the resolution policy to every recorded call site.
    pub fn resolve(&self) -> CallGraph {
        let mut graph = CallGraph {
            edges: vec![Vec::new(); self.fns.len()],
            ..CallGraph::default()
        };
        for (caller, def) in self.fns.iter().enumerate() {
            for call in &def.calls {
                match self.resolve_one(def, call) {
                    Resolution::Resolved(callee) => {
                        graph.resolved_calls += 1;
                        if !graph.edges[caller].contains(&callee) {
                            graph.edges[caller].push(callee);
                        }
                    }
                    Resolution::External => graph.external_calls += 1,
                    Resolution::Unresolved { candidates } => {
                        graph.unresolved.push(UnresolvedCall {
                            caller,
                            call: call.clone(),
                            candidates,
                        });
                    }
                }
            }
        }
        graph
    }

    fn resolve_one(&self, caller: &FnDef, call: &RawCall) -> Resolution {
        match call {
            RawCall::Bare { name, .. } => {
                let Some(cands) = self.by_name.get(name) else {
                    return Resolution::External;
                };
                // Same module wins, then same crate, then global uniqueness.
                let in_module: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].module == caller.module)
                    .collect();
                if in_module.len() == 1 {
                    return Resolution::Resolved(in_module[0]);
                }
                let in_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].krate == caller.krate)
                    .collect();
                if in_crate.len() == 1 {
                    return Resolution::Resolved(in_crate[0]);
                }
                if cands.len() == 1 {
                    return Resolution::Resolved(cands[0]);
                }
                Resolution::Unresolved { candidates: cands.len() }
            }
            RawCall::Qualified { segs, .. } => self.resolve_qualified(caller, segs),
            RawCall::Method { recv, name, .. } => {
                let ty_hint = match recv {
                    Recv::SelfVal => caller.self_ty.clone(),
                    Recv::Typed(t) => Some(t.clone()),
                    Recv::Unknown => None,
                };
                let cands = self.methods_by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
                if let Some(ty) = ty_hint {
                    if let Some(exact) = self.by_method.get(&(ty.clone(), name.clone())) {
                        // Several impl blocks (incl. trait impls) can carry
                        // the same (type, name); any is the same function
                        // only if unique, otherwise ambiguous.
                        if exact.len() == 1 {
                            return Resolution::Resolved(exact[0]);
                        }
                        return Resolution::Unresolved { candidates: exact.len() };
                    }
                    // No `(type, method)` entry. A foreign receiver type
                    // (Vec, String, …) and the ubiquitous std/derive
                    // methods on workspace types are external; an unknown
                    // non-std method on a workspace type is a coverage gap
                    // (a trait default we could not place) — count it.
                    if !self.types.contains(&ty)
                        || COMMON_STD_METHODS.contains(&name.as_str())
                        || cands.is_empty()
                    {
                        return Resolution::External;
                    }
                    return Resolution::Unresolved { candidates: cands.len() };
                }
                if COMMON_STD_METHODS.contains(&name.as_str()) {
                    return Resolution::External;
                }
                match cands.len() {
                    0 => Resolution::External,
                    1 => Resolution::Resolved(cands[0]),
                    n => Resolution::Unresolved { candidates: n },
                }
            }
        }
    }

    fn resolve_qualified(&self, caller: &FnDef, raw_segs: &[String]) -> Resolution {
        let segs = normalize_path(raw_segs, &caller.krate, &caller.module, caller.self_ty.as_deref());
        let segs = &segs[..];
        if segs.is_empty() {
            return Resolution::External;
        }
        if segs.len() >= 2 {
            // `Type::method` anywhere in the workspace.
            let ty = &segs[segs.len() - 2];
            let name = &segs[segs.len() - 1];
            if let Some(exact) = self.by_method.get(&(ty.clone(), name.clone())) {
                if exact.len() == 1 {
                    return Resolution::Resolved(exact[0]);
                }
                return Resolution::Unresolved { candidates: exact.len() };
            }
        }
        // Suffix match against full paths (`a::b::f` matches
        // `minoaner_x::a::b::f`).
        let suffix = segs.join("::");
        let matches: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.path == suffix || f.path.ends_with(&format!("::{suffix}"))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => return Resolution::Resolved(matches[0]),
            0 => {}
            _ => {
                let in_crate: Vec<usize> = matches
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].krate == caller.krate)
                    .collect();
                if in_crate.len() == 1 {
                    return Resolution::Resolved(in_crate[0]);
                }
                return Resolution::Unresolved { candidates: matches.len() };
            }
        }
        // Zero matches: workspace type with an unknown method is a
        // coverage gap; anything else (std, Vec, serde, …) is external.
        if segs.len() >= 2 && self.types.contains(&segs[segs.len() - 2]) {
            let last = &segs[segs.len() - 1];
            // `Type::Variant(…)` enum/tuple-struct constructors and
            // derived std methods (`Type::default()`) are not fns the
            // table could ever hold — external, not a coverage gap.
            if last.chars().next().is_some_and(char::is_uppercase)
                || COMMON_STD_METHODS.contains(&last.as_str())
            {
                return Resolution::External;
            }
            return Resolution::Unresolved { candidates: 0 };
        }
        Resolution::External
    }
}

enum Resolution {
    Resolved(usize),
    External,
    Unresolved { candidates: usize },
}

// ───────────────────────────── file scanning ─────────────────────────────

/// Derives `(crate_name, base_module_segments)` from a workspace-relative
/// path. Returns `None` for files that are not part of a crate's library
/// or binary source tree.
pub fn module_of(rel: &str) -> Option<(String, Vec<String>)> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, src_idx) = if parts.first() == Some(&"crates") && parts.get(2) == Some(&"src") {
        (format!("minoaner_{}", parts[1].replace('-', "_")), 2)
    } else if parts.first() == Some(&"src") {
        ("minoaner".to_string(), 0)
    } else {
        return None;
    };
    let mut mods: Vec<String> = Vec::new();
    for (i, part) in parts.iter().enumerate().skip(src_idx + 1) {
        let is_last = i == parts.len() - 1;
        if is_last {
            let stem = part.strip_suffix(".rs")?;
            if !matches!(stem, "lib" | "main" | "mod") {
                mods.push(stem.to_string());
            }
        } else {
            mods.push((*part).to_string());
        }
    }
    Some((krate, mods))
}

/// Scans one file's token stream into the symbol table. `test_spans` are
/// the `#[cfg(test)]`/`#[test]` body spans from `rules::cfg_test_spans`;
/// `whole_file_test` marks tests/benches/examples files.
pub fn scan_file(
    table: &mut SymbolTable,
    rel: &str,
    krate: &str,
    base_mods: &[String],
    toks: &[Tok],
    test_spans: &[(usize, usize)],
    whole_file_test: bool,
) -> Vec<usize> {
    let mut scanner = Scanner {
        table,
        toks,
        rel,
        krate,
        test_spans,
        whole_file_test,
        new_fns: Vec::new(),
    };
    let module = if base_mods.is_empty() {
        krate.to_string()
    } else {
        format!("{}::{}", krate, base_mods.join("::"))
    };
    scanner.scan_items(0..toks.len(), &module, None);
    let ids = scanner.new_fns.clone();
    // Second pass: collect call sites over each fn's *own* tokens (body
    // minus nested fn bodies, which collected their own).
    let spans: Vec<(usize, Range<usize>)> = ids
        .iter()
        .filter_map(|&id| table.fns[id].body.clone().map(|b| (id, b)))
        .collect();
    for &(id, ref body) in &spans {
        let nested: Vec<Range<usize>> = spans
            .iter()
            .filter(|(other, b)| *other != id && b.start > body.start && b.end <= body.end)
            .map(|(_, b)| b.clone())
            .collect();
        let own = subtract_ranges(body.clone(), &nested);
        let locals = collect_local_types(toks, &own);
        let calls = collect_calls(toks, &own, &locals);
        table.fns[id].calls = calls;
    }
    ids
}

/// `body` minus any contained `nested` ranges (all nested ranges are
/// strictly inside `body` and non-overlapping).
pub fn subtract_ranges(body: Range<usize>, nested: &[Range<usize>]) -> Vec<Range<usize>> {
    let mut sorted: Vec<Range<usize>> = nested.to_vec();
    sorted.sort_by_key(|r| r.start);
    let mut out = Vec::new();
    let mut cur = body.start;
    for r in sorted {
        // Skip ranges nested inside an already-subtracted one.
        if r.start < cur {
            continue;
        }
        if r.start > cur {
            out.push(cur..r.start);
        }
        cur = r.end;
    }
    if cur < body.end {
        out.push(cur..body.end);
    }
    out
}

struct Scanner<'a> {
    table: &'a mut SymbolTable,
    toks: &'a [Tok],
    rel: &'a str,
    krate: &'a str,
    test_spans: &'a [(usize, usize)],
    whole_file_test: bool,
    new_fns: Vec<usize>,
}

impl Scanner<'_> {
    fn is_test_at(&self, idx: usize) -> bool {
        self.whole_file_test || self.test_spans.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    /// Walks the items in `range`, registering fns and recursing into
    /// module / impl / trait / fn bodies.
    fn scan_items(&mut self, range: Range<usize>, module: &str, self_ty: Option<&str>) {
        let toks = self.toks;
        let mut i = range.start;
        while i < range.end {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                // Attributes: skip `#[…]` wholesale.
                if t.is_punct("#") && i + 1 < range.end && toks[i + 1].is_punct("[") {
                    i = skip_brackets(toks, i + 1, range.end);
                    continue;
                }
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "mod" => {
                    if i + 2 < range.end
                        && toks[i + 1].kind == TokKind::Ident
                        && toks[i + 2].is_punct("{")
                    {
                        let body_end = match_brace(toks, i + 2, range.end);
                        let sub = format!("{module}::{}", toks[i + 1].text);
                        self.scan_items(i + 3..body_end.saturating_sub(1), &sub, None);
                        i = body_end;
                    } else {
                        i = skip_to_semi(toks, i, range.end);
                    }
                }
                "impl" | "trait" => {
                    let (ty, body) = parse_impl_header(toks, i, range.end, t.text == "trait");
                    match body {
                        Some(body_range) => {
                            let owned;
                            let ty_ref = match &ty {
                                Some(name) => {
                                    owned = name.clone();
                                    Some(owned.as_str())
                                }
                                None => None,
                            };
                            self.scan_items(body_range.clone(), module, ty_ref);
                            i = body_range.end + 1;
                        }
                        None => i = skip_to_semi(toks, i, range.end),
                    }
                }
                "fn" => {
                    i = self.scan_fn(i, range.end, module, self_ty);
                }
                "struct" | "enum" | "union" => {
                    i = skip_struct_like(toks, i, range.end);
                }
                "macro_rules" => {
                    // `macro_rules! name { … }` — the body is token soup.
                    let mut j = i + 1;
                    while j < range.end && !toks[j].is_punct("{") {
                        j += 1;
                    }
                    i = if j < range.end { match_brace(toks, j, range.end) } else { range.end };
                }
                "use" | "type" => {
                    i = skip_to_semi(toks, i, range.end);
                }
                "const" | "static" => {
                    // `const fn` is handled by the `fn` arm next iteration.
                    if i + 1 < range.end
                        && (toks[i + 1].is_ident("fn") || toks[i + 1].is_ident("unsafe"))
                    {
                        i += 1;
                    } else {
                        i = skip_to_semi(toks, i, range.end);
                    }
                }
                "extern" => {
                    // `extern "C" { … }` foreign block (decl-only fns) or
                    // `extern crate …;`.
                    let mut j = i + 1;
                    while j < range.end && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                        j += 1;
                    }
                    if j < range.end && toks[j].is_punct("{") {
                        let end = match_brace(toks, j, range.end);
                        self.scan_items(j + 1..end.saturating_sub(1), module, self_ty);
                        i = end;
                    } else {
                        i = j + 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// `toks[at]` is the `fn` keyword. Registers the function and recurses
    /// into its body for nested items. Returns the index to continue from.
    fn scan_fn(&mut self, at: usize, end: usize, module: &str, self_ty: Option<&str>) -> usize {
        let toks = self.toks;
        if at + 1 >= end || toks[at + 1].kind != TokKind::Ident {
            return at + 1; // `fn(…)` pointer type or malformed
        }
        let name = toks[at + 1].text.clone();
        let line = toks[at + 1].line;
        let mut j = at + 2;
        if j < end && toks[j].is_punct("<") {
            j = skip_angles(toks, j, end);
        }
        // Signature runs to the body `{` or declaration `;` at depth 0.
        let mut depth: i32 = 0;
        let mut body: Option<Range<usize>> = None;
        while j < end {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        let close = match_brace(toks, j, end);
                        body = Some(j..close);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let path = match self_ty {
            Some(ty) => format!("{module}::{ty}::{name}"),
            None => format!("{module}::{name}"),
        };
        let def = FnDef {
            path,
            name,
            self_ty: self_ty.map(str::to_string),
            module: module.to_string(),
            krate: self.krate.to_string(),
            file: self.rel.to_string(),
            line,
            is_test: self.is_test_at(at),
            body: body.clone(),
            calls: Vec::new(),
        };
        let id = self.table.insert(def);
        self.new_fns.push(id);
        match body {
            Some(b) => {
                // Nested items (fns, impls in fn bodies) register themselves.
                self.scan_items(b.start + 1..b.end.saturating_sub(1), module, self_ty);
                b.end
            }
            None => j + 1,
        }
    }
}

/// From `impl`/`trait` at `at`, returns the self type name and the body
/// token range (exclusive of braces).
fn parse_impl_header(
    toks: &[Tok],
    at: usize,
    end: usize,
    is_trait: bool,
) -> (Option<String>, Option<Range<usize>>) {
    let mut j = at + 1;
    if j < end && toks[j].is_punct("<") {
        j = skip_angles(toks, j, end);
    }
    // Collect the first type path; if `for` follows, the self type is the
    // second path (trait impl), else the first (inherent impl). For
    // `trait Name`, the name itself is the "type".
    let mut first_last_seg: Option<String> = None;
    let mut second_last_seg: Option<String> = None;
    let mut after_for = false;
    while j < end {
        let t = &toks[j];
        if t.is_punct("{") {
            let close = match_brace(toks, j, end);
            let ty = if is_trait {
                first_last_seg
            } else if after_for {
                second_last_seg
            } else {
                first_last_seg
            };
            return (ty, Some(j + 1..close.saturating_sub(1)));
        }
        if t.is_punct(";") {
            return (None, None);
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "for" => after_for = true,
                "where" => {
                    // Skip the clause: scan to `{`.
                    while j < end && !toks[j].is_punct("{") {
                        j += 1;
                    }
                    continue;
                }
                "dyn" | "mut" => {}
                _ => {
                    let slot = if after_for { &mut second_last_seg } else { &mut first_last_seg };
                    // A trait's name is the first ident after `trait`
                    // (supertrait bounds follow the `:` and must not win).
                    if !(is_trait && slot.is_some()) {
                        *slot = Some(t.text.clone());
                    }
                    if j + 1 < end && toks[j + 1].is_punct("<") {
                        j = skip_angles(toks, j + 1, end);
                        continue;
                    }
                }
            }
        }
        j += 1;
    }
    (None, None)
}

/// `toks[open]` is `{`; returns the index one past the matching `}`.
fn match_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// `toks[open]` is `[`; returns the index one past the matching `]`.
fn skip_brackets(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].is_punct("[") {
            depth += 1;
        } else if toks[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// `toks[open]` is `<`; returns the index one past the matching `>`,
/// treating the coalesced `>>` as two closes and ignoring `->`/`=>`.
fn skip_angles(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            if depth <= 0 && (toks[i].text == ">" || toks[i].text == ">>") {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Skips to one past the terminating `;`, tracking braces so `const X:
/// usize = { … };` and struct-literal initialisers don't cut early.
fn skip_to_semi(toks: &[Tok], at: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < end {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    end
}

/// Skips a `struct`/`enum`/`union` item: unit (`;`), tuple (`(…);`) or
/// braced body.
fn skip_struct_like(toks: &[Tok], at: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < end {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return match_brace(toks, i, end),
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    end
}

// ─────────────────────── call & type-hint extraction ───────────────────────

/// Local name → type (last path segment) from fn params (`name: Type`)
/// and `let` bindings (`let [mut] name: Type`, `let [mut] name = Type::…`).
/// Scans the given ranges plus a lookback window for the signature.
fn collect_local_types(toks: &[Tok], ranges: &[Range<usize>]) -> BTreeMap<String, String> {
    let mut locals = BTreeMap::new();
    // The signature (params) sits just before the first range (the body
    // opens at the brace); widen the first range back to the enclosing
    // `fn` keyword so `name: Type` params are picked up.
    let Some(first) = ranges.first() else {
        return locals;
    };
    let mut sig_start = first.start;
    while sig_start > 0 && !toks[sig_start].is_ident("fn") && first.start - sig_start < 256 {
        sig_start -= 1;
    }
    let widened: Vec<Range<usize>> = std::iter::once(sig_start..first.end)
        .chain(ranges.iter().skip(1).cloned())
        .collect();
    for r in &widened {
        let mut i = r.start;
        while i + 2 < r.end {
            // `name : Type` (params, let annotations, struct fields are
            // excluded because struct bodies are never inside fn bodies).
            if toks[i].kind == TokKind::Ident
                && !is_keyword(&toks[i].text)
                && toks[i + 1].is_punct(":")
            {
                if let Some(ty) = type_head(toks, i + 2, r.end) {
                    locals.insert(toks[i].text.clone(), ty);
                }
            }
            // `let [mut] name = Type::…`
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if j < r.end && toks[j].is_ident("mut") {
                    j += 1;
                }
                if j + 3 < r.end
                    && toks[j].kind == TokKind::Ident
                    && toks[j + 1].is_punct("=")
                    && toks[j + 2].kind == TokKind::Ident
                    && toks[j + 3].is_punct("::")
                    && toks[j + 2].text.chars().next().is_some_and(char::is_uppercase)
                {
                    locals.insert(toks[j].text.clone(), toks[j + 2].text.clone());
                }
            }
            i += 1;
        }
    }
    locals
}

/// Reads a type starting at `at`, returning the last path segment before
/// any generic args (`&mut a::b::Foo<T>` → `Foo`).
fn type_head(toks: &[Tok], at: usize, end: usize) -> Option<String> {
    let mut i = at;
    // Skip reference/pointer sigils and modifiers.
    while i < end {
        let t = &toks[i];
        if t.is_punct("&") || t.kind == TokKind::Lifetime || t.is_ident("mut") || t.is_ident("dyn")
        {
            i += 1;
        } else {
            break;
        }
    }
    let mut last: Option<String> = None;
    while i < end && toks[i].kind == TokKind::Ident {
        if is_keyword(&toks[i].text) {
            return None; // `impl Fn(…)`, `fn(…)` types — no useful head
        }
        last = Some(toks[i].text.clone());
        if i + 1 < end && toks[i + 1].is_punct("::") {
            i += 2;
        } else {
            break;
        }
    }
    last
}

/// Whether the ident at `k` is followed by a call's `(`, allowing a
/// turbofish (`foo::<T>(…)`). Returns the index of the `(` if so.
fn call_paren(toks: &[Tok], k: usize) -> Option<usize> {
    let mut j = k + 1;
    if j + 1 < toks.len() && toks[j].is_punct("::") && toks[j + 1].is_punct("<") {
        j = skip_angles(toks, j + 1, toks.len());
    }
    (j < toks.len() && toks[j].is_punct("(")).then_some(j)
}

/// Extracts call sites from the fn's own token ranges.
fn collect_calls(
    toks: &[Tok],
    ranges: &[Range<usize>],
    locals: &BTreeMap<String, String>,
) -> Vec<RawCall> {
    let mut calls = Vec::new();
    for r in ranges {
        let mut i = r.start;
        while i < r.end {
            let t = &toks[i];
            if t.kind != TokKind::Ident || is_keyword(&t.text) {
                i += 1;
                continue;
            }
            // Macro invocation: not a call (panic-family handled as
            // direct effects in effects.rs).
            if i + 1 < r.end && toks[i + 1].is_punct("!") {
                i += 2;
                continue;
            }
            let Some(_paren) = call_paren(toks, i) else {
                i += 1;
                continue;
            };
            // Walk back through `seg::seg::…::` to the path head.
            let mut segs = vec![t.text.clone()];
            let mut head = i;
            while head >= 2
                && toks[head - 1].is_punct("::")
                && toks[head - 2].kind == TokKind::Ident
            {
                head -= 2;
                segs.insert(0, toks[head].text.clone());
            }
            let before = head.checked_sub(1).map(|b| &toks[b]);
            let line = t.line;
            if segs.len() == 1 {
                if before.is_some_and(|b| b.is_punct(".")) {
                    // Method call; receiver is the token before the dot.
                    let recv = match head.checked_sub(2).map(|b| &toks[b]) {
                        Some(r) if r.is_ident("self") => Recv::SelfVal,
                        Some(r)
                            if r.kind == TokKind::Ident
                                && !is_keyword(&r.text)
                                // `x.y.method()` — `y` is a field, not a
                                // local; only use the hint when the token
                                // before it isn't another `.`.
                                && !(head >= 3 && toks[head - 3].is_punct(".")) =>
                        {
                            match locals.get(&r.text) {
                                Some(ty) => Recv::Typed(ty.clone()),
                                None => Recv::Unknown,
                            }
                        }
                        _ => Recv::Unknown,
                    };
                    calls.push(RawCall::Method { recv, name: segs.pop().unwrap_or_default(), line });
                } else if before.is_none_or(|b| !b.is_ident("fn")) {
                    calls.push(RawCall::Bare { name: segs.pop().unwrap_or_default(), line });
                }
            } else {
                calls.push(RawCall::Qualified { segs, line });
            }
            i += 1;
        }
    }
    calls
}

/// Normalizes a qualified call's head segment against the caller's
/// position: `crate` → crate name, `self` → module, `super` → parent
/// module, `Self` → impl type. Returns `None` if the path cannot target
/// workspace code (e.g. `std::…`).
pub fn normalize_path(
    segs: &[String],
    krate: &str,
    module: &str,
    self_ty: Option<&str>,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    match segs.first().map(String::as_str) {
        Some("crate") => {
            out.push(krate.to_string());
            out.extend(segs[1..].iter().cloned());
        }
        Some("self") => {
            out.extend(module.split("::").map(str::to_string));
            out.extend(segs[1..].iter().cloned());
        }
        Some("super") => {
            let mods: Vec<&str> = module.split("::").collect();
            out.extend(mods[..mods.len().saturating_sub(1)].iter().map(|s| s.to_string()));
            out.extend(segs[1..].iter().cloned());
        }
        Some("Self") => {
            if let Some(ty) = self_ty {
                out.push(ty.to_string());
            }
            out.extend(segs[1..].iter().cloned());
        }
        _ => out.extend(segs.iter().cloned()),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules;

    fn table_of(src: &str) -> (SymbolTable, Vec<usize>) {
        let toks = lex(src);
        let spans = rules::cfg_test_spans(&toks);
        let mut table = SymbolTable::default();
        let ids = scan_file(&mut table, "crates/kb/src/demo.rs", "minoaner_kb", &["demo".into()], &toks, &spans, false);
        (table, ids)
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(
            module_of("crates/kb/src/disk.rs"),
            Some(("minoaner_kb".into(), vec!["disk".into()]))
        );
        assert_eq!(module_of("crates/core/src/lib.rs"), Some(("minoaner_core".into(), vec![])));
        assert_eq!(module_of("src/lib.rs"), Some(("minoaner".into(), vec![])));
        assert_eq!(
            module_of("crates/kb/src/io/reader.rs"),
            Some(("minoaner_kb".into(), vec!["io".into(), "reader".into()]))
        );
        assert_eq!(module_of("crates/kb/tests/mkb.rs"), None);
        assert_eq!(module_of("README.md"), None);
    }

    #[test]
    fn free_fns_methods_and_trait_impls_get_paths() {
        let (table, _) = table_of(
            "pub fn free() {}\n\
             struct Store;\n\
             impl Store { fn get_one(&self) {} }\n\
             impl Drop for Store { fn drop(&mut self) {} }\n\
             trait Walk { fn walk(&self) { self.get_one(); } }\n\
             mod inner { pub fn nested_free() {} }",
        );
        let paths: Vec<&str> = table.fns.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "minoaner_kb::demo::free",
                "minoaner_kb::demo::Store::get_one",
                "minoaner_kb::demo::Store::drop",
                "minoaner_kb::demo::Walk::walk",
                "minoaner_kb::demo::inner::nested_free",
            ]
        );
    }

    #[test]
    fn calls_resolve_by_module_receiver_and_method_index() {
        let (table, _) = table_of(
            "fn helper() {}\n\
             struct Store;\n\
             impl Store {\n\
               fn load(&self) { helper(); self.decode(); }\n\
               fn decode(&self) {}\n\
             }\n\
             fn run(s: Store) { s.load(); Store::decode(&s); }",
        );
        let graph = table.resolve();
        let load = table.lookup_path("minoaner_kb::demo::Store::load").unwrap();
        let helper = table.lookup_path("minoaner_kb::demo::helper").unwrap();
        let decode = table.lookup_path("minoaner_kb::demo::Store::decode").unwrap();
        let run = table.lookup_path("minoaner_kb::demo::run").unwrap();
        assert_eq!(graph.edges[load], vec![helper, decode]);
        assert_eq!(graph.edges[run], vec![table.lookup_path("minoaner_kb::demo::Store::load").unwrap(), decode]);
        assert!(graph.unresolved.is_empty(), "{:?}", graph.unresolved);
    }

    #[test]
    fn std_calls_are_external_ambiguity_is_unresolved() {
        let (table, _) = table_of(
            "struct A; struct B;\n\
             impl A { fn shared_name(&self) {} }\n\
             impl B { fn shared_name(&self) {} }\n\
             fn f(v: Vec<u32>) { v.len(); Vec::with_capacity(3); format(); }\n\
             fn g(x: &str) { x.shared_name(); }\n\
             fn h() { pick().shared_name(); }",
        );
        let graph = table.resolve();
        // `v.len()`, `Vec::with_capacity`, bare `format` (no such fn) are
        // all external, and so is `x.shared_name()`: `str` is not a
        // workspace type, so the candidates cannot be its impl. Only
        // `pick().shared_name()` — unknown receiver, two workspace
        // candidates — is genuinely ambiguous and stays unresolved.
        assert_eq!(graph.unresolved.len(), 1, "{:?}", graph.unresolved);
        assert_eq!(graph.unresolved[0].candidates, 2);
    }

    #[test]
    fn nested_fn_bodies_are_excluded_from_parent_calls() {
        let (table, _) = table_of(
            "fn inner_target() {}\n\
             fn outer() {\n\
               fn nested() { inner_target(); }\n\
               nested();\n\
             }",
        );
        let outer = table.lookup_path("minoaner_kb::demo::outer").unwrap();
        let nested = table.lookup_path("minoaner_kb::demo::nested").unwrap();
        let target = table.lookup_path("minoaner_kb::demo::inner_target").unwrap();
        let graph = table.resolve();
        assert_eq!(graph.edges[outer], vec![nested]);
        assert_eq!(graph.edges[nested], vec![target]);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let (table, _) = table_of(
            "fn lib_fn() {}\n\
             #[cfg(test)]\nmod tests {\n  fn helper() {}\n}",
        );
        let lib = table.lookup_path("minoaner_kb::demo::lib_fn").unwrap();
        let helper = table.lookup_path("minoaner_kb::demo::tests::helper").unwrap();
        assert!(!table.fns[lib].is_test);
        assert!(table.fns[helper].is_test);
    }

    #[test]
    fn subtract_ranges_cuts_nested_spans() {
        assert_eq!(subtract_ranges(0..10, std::slice::from_ref(&(3..5))), vec![0..3, 5..10]);
        assert_eq!(subtract_ranges(0..10, &[]), vec![0..10]);
        assert_eq!(subtract_ranges(2..8, &[2..4, 6..8]), vec![4..6]);
    }
}
