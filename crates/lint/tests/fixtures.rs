//! Fixture suite: every bad snippet is flagged by exactly the rule it
//! exercises, and the good snippet is completely clean.

use minoaner_lint::lexer::lex;
use minoaner_lint::rules::{run_all, FileClass, Violation};
use std::path::PathBuf;

fn fixture(rel: &str) -> Vec<Violation> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    run_all(rel, FileClass::Library, &src, &lex(&src))
}

fn rules_of(v: &[Violation]) -> Vec<&'static str> {
    v.iter().map(|x| x.rule).collect()
}

#[test]
fn bad_r1_std_hash_flagged() {
    let v = fixture("bad/r1_std_hash.rs");
    assert_eq!(rules_of(&v), ["R1", "R1", "R1"], "{v:#?}");
}

#[test]
fn bad_r2_float_accum_flagged() {
    let v = fixture("bad/r2_float_accum.rs");
    assert_eq!(rules_of(&v), ["R2", "R2", "R2"], "{v:#?}");
}

#[test]
fn bad_r3_wallclock_flagged() {
    let v = fixture("bad/r3_wallclock.rs");
    assert_eq!(rules_of(&v), ["R3", "R3", "R3"], "{v:#?}");
}

#[test]
fn bad_r4_unwrap_flagged() {
    let v = fixture("bad/r4_unwrap.rs");
    assert_eq!(rules_of(&v), ["R4", "R4"], "{v:#?}");
}

#[test]
fn bad_r5_unsafe_flagged() {
    let v = fixture("bad/r5_unsafe.rs");
    assert_eq!(rules_of(&v), ["R5", "R5", "R5"], "{v:#?}");
    // One violation per `unsafe`: the Send impl's comment lacks the
    // SAFETY: marker, and the Sync impl has no comment of its own.
    assert_eq!(v[0].line, 6);
    assert_eq!(v[1].line, 7);
}

#[test]
fn bad_r6_direct_fs_flagged_under_durable_path() {
    // R6 is path-gated to the durable modules, so the fixture source is
    // linted twice: once as a durable path (flagged) and once under its
    // own fixture path (clean).
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/bad/r6_direct_fs.rs");
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let toks = lex(&src);
    let v = run_all("crates/dataflow/src/checkpoint.rs", FileClass::Library, &src, &toks);
    assert_eq!(rules_of(&v), ["R6", "R6", "R6"], "{v:#?}");
    let v = run_all("bad/r6_direct_fs.rs", FileClass::Library, &src, &toks);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn good_fixture_is_clean() {
    let v = fixture("good/clean.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn violations_carry_file_and_line() {
    let v = fixture("bad/r1_std_hash.rs");
    assert!(v.iter().all(|x| x.path == "bad/r1_std_hash.rs"));
    assert!(v.iter().all(|x| x.line > 0));
    // The use-line violations point at the actual use statement.
    assert_eq!(v[0].line, 4);
}
