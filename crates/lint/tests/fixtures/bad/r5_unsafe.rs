//! R5 fixture: three `unsafe` occurrences without a SAFETY justification.

pub struct Raw(*const u8);

// The mapping is read-only bytes — a comment, but not a SAFETY: marker.
unsafe impl Send for Raw {}
unsafe impl Sync for Raw {}

pub fn deref(r: &Raw) -> u8 {
    unsafe { *r.0 }
}
