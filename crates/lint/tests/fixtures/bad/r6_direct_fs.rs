//! R6 fixture: direct filesystem access that bypasses the `Vfs` seam.
//! Expected: 3 violations when linted under a durable-path name (the rule
//! is path-gated, so the fixture suite lints this source as if it were
//! `crates/dataflow/src/checkpoint.rs`).

use std::fs::File;
use std::io;
use std::path::Path;

pub fn write_direct(path: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn create_direct(path: &Path) -> io::Result<File> {
    File::create(path)
}
