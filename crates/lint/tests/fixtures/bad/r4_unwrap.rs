//! R4 fixture: unwrap/expect on library paths. Expected: 2 violations —
//! the copies inside `#[cfg(test)]` are exempt.

pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap()
}

pub fn parse_host(s: &str) -> &str {
    s.split(':').next().expect("host before colon")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u16, ()> = Ok(80);
        assert_eq!(v.unwrap(), 80);
    }
}
