//! R2 fixture: float reductions whose order follows hash-map iteration.
//! Expected: 3 violations (turbofish sum, fold, loop `+=`).

use minoaner_det::DetHashMap;

pub fn gamma_total(weights: &DetHashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn gamma_fold(weights: &DetHashMap<u32, f64>) -> f64 {
    weights.iter().fold(0.0, |acc, (_, w)| acc + w)
}

pub fn gamma_loop(weights: &DetHashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += *w;
    }
    total
}
