//! R3 fixture: wall-clock and entropy reads in ordinary library code.
//! Expected: 3 violations.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
