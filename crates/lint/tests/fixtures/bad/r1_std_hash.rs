//! R1 fixture: std hash containers with the randomly-seeded default
//! hasher. Expected: 3 violations (use line names both, plus the field).

use std::collections::{HashMap, HashSet};

pub struct BlockIndex {
    by_token: HashMap<u64, Vec<u32>>,
}

impl BlockIndex {
    pub fn new() -> Self {
        Self {
            by_token: Default::default(),
        }
    }
}
