//! Good fixture: deterministic idioms for everything the bad fixtures do
//! wrong. Expected: 0 violations. (Mentions of HashMap in comments and
//! "HashMap" in strings must not trip R1.)

use minoaner_det::{DetHashMap, DetHashSet};
use std::collections::BTreeMap;

pub struct BlockIndex {
    by_token: DetHashMap<u64, Vec<u32>>,
    seen: DetHashSet<u64>,
    ordered: BTreeMap<u64, f64>,
}

pub fn gamma_total(weights: &DetHashMap<u32, f64>) -> f64 {
    let mut keys: Vec<u32> = weights.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| weights[k]).sum::<f64>()
}

pub fn parse_port(s: &str) -> Result<u16, std::num::ParseIntError> {
    // The string "HashMap" and `.unwrap()` in this comment are not code.
    s.parse()
}

pub fn label() -> &'static str {
    "not a HashMap, just a string"
}

pub fn first_byte(bytes: &[u8]) -> Option<u8> {
    let p = bytes.first()?;
    // Comments may precede the justification without breaking the block.
    // SAFETY: `p` comes from `bytes.first()`, so it is valid for reads.
    Some(unsafe { std::ptr::read(p) })
}
