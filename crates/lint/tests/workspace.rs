//! The canonical whole-workspace check: the tree must be clean under the
//! checked-in `lint-allow.toml`. This is the single source of truth the
//! per-crate thin tests (e.g. `crates/blocking/tests/lint.rs`) defer to.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_allowlist() {
    let root = workspace_root();
    let allow = root.join("lint-allow.toml");
    let report = minoaner_lint::run_check(&root, &allow).expect("lint run");
    assert!(
        report.clean(),
        "workspace lint failures:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

#[test]
fn json_report_round_trips_the_clean_flag() {
    let root = workspace_root();
    let allow = root.join("lint-allow.toml");
    let report = minoaner_lint::run_check(&root, &allow).expect("lint run");
    let json = report.render_json();
    assert_eq!(json.contains("\"clean\": true"), report.clean());
}
