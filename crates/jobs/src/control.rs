//! The file-based control plane: how `minoaner jobs list|status|cancel`
//! observe and steer a scheduler running in another process.
//!
//! Layout under a control root:
//!
//! ```text
//! <root>/job-<id>/status.json   # atomic snapshot, rewritten on every transition
//! <root>/job-<id>/CANCEL        # marker dropped by `jobs cancel`, polled by the scheduler
//! <root>/job-<id>/ckpt/         # the job's checkpoint store (written by the pipeline)
//! <root>/job-<id>/trace.json    # the job's RunTrace (written by the CLI)
//! ```
//!
//! Status files are written atomically (tmp + rename), so a reader never
//! observes a torn snapshot. The JSON codec is hand-rolled for the one
//! flat shape used here: the status schema is this crate's public,
//! versioned contract, and owning the codec keeps `minoaner-jobs` free of
//! serialization dependencies (and exactly as strict as the schema).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use minoaner_dataflow::vfs::{self, Vfs};
use minoaner_dataflow::CancelReason;

use crate::job::{JobId, JobState, JobStatus, Priority};

/// Version stamped into every status file; readers reject other versions
/// instead of guessing.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// The per-job directory under a control root.
pub fn job_dir(root: &Path, id: JobId) -> PathBuf {
    root.join(format!("job-{id}"))
}

/// A malformed or unreadable control-plane artifact.
#[derive(Debug)]
pub enum ControlError {
    /// Filesystem failure reading or writing an artifact.
    Io(io::Error),
    /// The artifact exists but does not parse as a valid status.
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Io(e) => write!(f, "control plane I/O error: {e}"),
            ControlError::Malformed { path, detail } => {
                write!(f, "malformed control file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for ControlError {}

impl From<io::Error> for ControlError {
    fn from(e: io::Error) -> Self {
        ControlError::Io(e)
    }
}

/// Atomically writes `status` into its job directory under `root`,
/// creating the directory if needed.
pub fn write_status(root: &Path, status: &JobStatus) -> io::Result<()> {
    write_status_with(&*vfs::default_vfs(), root, status)
}

/// [`write_status`] through an explicit [`Vfs`] — the chaos harness's
/// injection point.
///
/// Follows the workspace's full atomic-commit protocol: the snapshot is
/// written to a `.tmp-` sibling, fsynced, renamed over `status.json`, and
/// the directory is fsynced so the rename survives a crash. On any failure
/// the temporary is removed best-effort, so a failed transition never
/// leaks scratch into the job directory (`list_statuses` would skip it
/// anyway — recovery scanners ignore `.tmp-` names — but the leak-scan in
/// the chaos sweep holds every durable path to the stronger contract).
pub fn write_status_with(vfs: &dyn Vfs, root: &Path, status: &JobStatus) -> io::Result<()> {
    let dir = job_dir(root, status.id);
    vfs.create_dir_all(&dir)?;
    let json = status_to_json(status);
    let tmp = dir.join(".tmp-status.json");
    let committed = vfs::write_synced(vfs, &tmp, json.as_bytes())
        .and_then(|()| vfs.rename(&tmp, &dir.join("status.json")))
        .and_then(|()| vfs.sync_dir(&dir));
    if let Err(e) = committed {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Reads the status snapshot from a job directory.
pub fn read_status(dir: &Path) -> Result<JobStatus, ControlError> {
    read_status_with(&*vfs::default_vfs(), dir)
}

/// [`read_status`] through an explicit [`Vfs`].
pub fn read_status_with(vfs: &dyn Vfs, dir: &Path) -> Result<JobStatus, ControlError> {
    let path = dir.join("status.json");
    let json = vfs.read_to_string(&path)?;
    status_from_json(&json).map_err(|detail| ControlError::Malformed { path, detail })
}

/// All job statuses under a control root, ascending by id. A missing root
/// is an empty listing; entries that are not job directories (or whose
/// status file is torn mid-create) are skipped rather than failing the
/// whole listing.
pub fn list_statuses(root: &Path) -> io::Result<Vec<JobStatus>> {
    list_statuses_with(&*vfs::default_vfs(), root)
}

/// [`list_statuses`] through an explicit [`Vfs`].
pub fn list_statuses_with(vfs: &dyn Vfs, root: &Path) -> io::Result<Vec<JobStatus>> {
    let entries = match vfs.list_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut statuses = Vec::new();
    for path in entries {
        let Some(id) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(JobId::parse)
        else {
            continue;
        };
        if let Ok(status) = read_status_with(vfs, &path) {
            if status.id == id {
                statuses.push(status);
            }
        }
    }
    statuses.sort_by_key(|s| s.id);
    Ok(statuses)
}

/// Drops a `CANCEL` marker into the job's directory for the owning
/// scheduler to pick up on its next
/// [`poll_control`](crate::JobScheduler::poll_control). Returns `false`
/// (writing nothing) when the job directory does not exist.
pub fn request_cancel(root: &Path, id: JobId, reason: CancelReason) -> io::Result<bool> {
    request_cancel_with(&*vfs::default_vfs(), root, id, reason)
}

/// [`request_cancel`] through an explicit [`Vfs`]. The marker is advisory
/// (re-droppable at will), so it is a plain write with no fsync.
pub fn request_cancel_with(
    vfs: &dyn Vfs,
    root: &Path,
    id: JobId,
    reason: CancelReason,
) -> io::Result<bool> {
    let dir = job_dir(root, id);
    if !dir.is_dir() {
        return Ok(false);
    }
    vfs.write_file(&dir.join("CANCEL"), reason.as_str().as_bytes())?;
    Ok(true)
}

/// The pending cancel request for a job directory, if a marker exists.
/// An unreadable or unrecognized reason degrades to
/// [`CancelReason::User`] — a cancel request must never be dropped on a
/// parse error.
pub fn cancel_request(dir: &Path) -> Option<CancelReason> {
    cancel_request_with(&*vfs::default_vfs(), dir)
}

/// [`cancel_request`] through an explicit [`Vfs`].
pub fn cancel_request_with(vfs: &dyn Vfs, dir: &Path) -> Option<CancelReason> {
    let raw = vfs.read_to_string(&dir.join("CANCEL")).ok()?;
    Some(CancelReason::parse(raw.trim()).unwrap_or(CancelReason::User))
}

// ───────────────────────── status JSON codec ─────────────────────────

/// One scalar of the flat status object.
#[derive(Debug, PartialEq)]
enum Scalar {
    Str(String),
    UInt(u64),
    Null,
}

fn status_to_json(status: &JobStatus) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_uint(&mut out, "schema_version", STATUS_SCHEMA_VERSION);
    out.push(',');
    push_uint(&mut out, "id", status.id.ordinal());
    out.push(',');
    push_str(&mut out, "name", &status.name);
    out.push(',');
    push_str(&mut out, "priority", status.priority.as_str());
    out.push(',');
    push_uint(&mut out, "workers", status.workers as u64);
    out.push(',');
    push_uint(&mut out, "memory_bytes", status.memory_bytes);
    out.push(',');
    push_str(&mut out, "state", status.state.as_str());
    out.push(',');
    push_opt(&mut out, "cancel_reason", status.cancel_reason.map(CancelReason::as_str));
    out.push(',');
    push_opt(&mut out, "error", status.error.as_deref());
    out.push(',');
    push_opt(&mut out, "summary", status.summary.as_deref());
    out.push_str("}\n");
    out
}

fn status_from_json(json: &str) -> Result<JobStatus, String> {
    let fields = parse_flat_object(json)?;
    let get = |key: &str| -> Result<&Scalar, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let get_uint = |key: &str| -> Result<u64, String> {
        match get(key)? {
            Scalar::UInt(n) => Ok(*n),
            other => Err(format!("field {key:?} is not an unsigned integer (got {other:?})")),
        }
    };
    let get_str = |key: &str| -> Result<&str, String> {
        match get(key)? {
            Scalar::Str(s) => Ok(s.as_str()),
            other => Err(format!("field {key:?} is not a string (got {other:?})")),
        }
    };
    let get_opt = |key: &str| -> Result<Option<&str>, String> {
        match get(key)? {
            Scalar::Str(s) => Ok(Some(s.as_str())),
            Scalar::Null => Ok(None),
            other => Err(format!("field {key:?} is not a string or null (got {other:?})")),
        }
    };

    let version = get_uint("schema_version")?;
    if version != STATUS_SCHEMA_VERSION {
        return Err(format!(
            "status schema version {version} (reader supports {STATUS_SCHEMA_VERSION})"
        ));
    }
    let priority_name = get_str("priority")?;
    let priority = Priority::parse(priority_name)
        .ok_or_else(|| format!("unknown priority {priority_name:?}"))?;
    let state_name = get_str("state")?;
    let state =
        JobState::parse(state_name).ok_or_else(|| format!("unknown state {state_name:?}"))?;
    let cancel_reason = match get_opt("cancel_reason")? {
        Some(name) => {
            Some(CancelReason::parse(name).ok_or_else(|| format!("unknown reason {name:?}"))?)
        }
        None => None,
    };
    Ok(JobStatus {
        id: JobId::from_ordinal(get_uint("id")?),
        name: get_str("name")?.to_owned(),
        priority,
        workers: get_uint("workers")? as usize,
        memory_bytes: get_uint("memory_bytes")?,
        state,
        cancel_reason,
        error: get_opt("error")?.map(str::to_owned),
        summary: get_opt("summary")?.map(str::to_owned),
    })
}

fn push_uint(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_escaped(out, value);
}

fn push_opt(out: &mut String, key: &str, value: Option<&str>) {
    match value {
        Some(v) => push_str(out, key, v),
        None => {
            out.push('"');
            out.push_str(key);
            out.push_str("\":null");
        }
    }
}

fn push_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a single flat JSON object of string / unsigned-integer / null
/// scalars — exactly the status schema, nothing more.
fn parse_flat_object(json: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut cur = Cursor { bytes: json.as_bytes(), i: 0 };
    cur.skip_ws();
    if !cur.eat(b'{') {
        return Err("expected '{'".to_owned());
    }
    let mut fields = Vec::new();
    cur.skip_ws();
    if cur.eat(b'}') {
        return Ok(fields);
    }
    loop {
        cur.skip_ws();
        let key = cur.parse_string()?;
        cur.skip_ws();
        if !cur.eat(b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        cur.skip_ws();
        let value = cur.parse_scalar()?;
        fields.push((key, value));
        cur.skip_ws();
        if cur.eat(b',') {
            continue;
        }
        if cur.eat(b'}') {
            break;
        }
        return Err("expected ',' or '}'".to_owned());
    }
    cur.skip_ws();
    if cur.i != cur.bytes.len() {
        return Err("trailing data after object".to_owned());
    }
    Ok(fields)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.i).is_some_and(|b| b.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return Err("expected '\"'".to_owned());
        }
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.i..];
            let Some(&b) = rest.first() else { return Err("unterminated string".to_owned()) };
            match b {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.i += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let Some(c) = s.chars().next() else {
                        return Err("unterminated string".to_owned());
                    };
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.bytes.get(self.i) {
            Some(b'"') => self.parse_string().map(Scalar::Str),
            Some(b'n') => {
                if self.bytes[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Ok(Scalar::Null)
                } else {
                    Err("expected 'null'".to_owned())
                }
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.i;
                while self.bytes.get(self.i).is_some_and(|b| b.is_ascii_digit()) {
                    self.i += 1;
                }
                let digits =
                    std::str::from_utf8(&self.bytes[start..self.i]).map_err(|e| e.to_string())?;
                digits.parse::<u64>().map(Scalar::UInt).map_err(|e| e.to_string())
            }
            _ => Err("expected string, unsigned integer or null".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    use minoaner_dataflow::vfs::{FaultFs, FaultKind, FaultPlan};

    fn sample(id: u64, state: JobState) -> JobStatus {
        JobStatus {
            id: JobId::from_ordinal(id),
            name: "dbpedia \"full\" run\nwith newline \\ backslash".to_owned(),
            priority: Priority::High,
            workers: 3,
            memory_bytes: 1 << 30,
            state,
            cancel_reason: Some(CancelReason::Deadline),
            error: Some("stage \"match\" cancelled".to_owned()),
            summary: None,
        }
    }

    #[test]
    fn status_json_round_trips_exactly() {
        let status = sample(7, JobState::Cancelled);
        let json = status_to_json(&status);
        let back = status_from_json(&json).expect("round trip");
        assert_eq!(back, status);
    }

    #[test]
    fn reader_rejects_drifted_schema_and_junk() {
        assert!(status_from_json("{}").is_err(), "missing fields");
        assert!(status_from_json("not json").is_err());
        let status = sample(1, JobState::Running);
        let json = status_to_json(&status).replace("\"schema_version\":1", "\"schema_version\":9");
        let err = status_from_json(&json).expect_err("version drift");
        assert!(err.contains("schema version 9"), "got: {err}");
        let json = status_to_json(&status).replace("\"state\":\"running\"", "\"state\":\"paused\"");
        assert!(status_from_json(&json).is_err(), "unknown state must be rejected");
    }

    #[test]
    fn write_read_list_are_consistent() {
        let root = std::env::temp_dir().join(format!("minoaner-jobs-ctl-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let a = sample(2, JobState::Running);
        let b = JobStatus { state: JobState::Completed, ..sample(10, JobState::Completed) };
        write_status(&root, &a).expect("write a");
        write_status(&root, &b).expect("write b");
        // Junk the scanner must skip.
        fs::create_dir_all(root.join("job-xyz")).expect("junk dir");
        fs::write(root.join("stray.txt"), b"x").expect("stray file");
        fs::create_dir_all(root.join("job-j0099")).expect("empty job dir");

        let read = read_status(&job_dir(&root, a.id)).expect("read back");
        assert_eq!(read, a);
        let listed = list_statuses(&root).expect("list");
        assert_eq!(listed, vec![a.clone(), b.clone()], "ascending by id, junk skipped");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_status_write_at_every_op_leaks_nothing_and_keeps_the_old_snapshot() {
        let root = std::env::temp_dir().join(format!("minoaner-jobs-chaos-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let old = sample(3, JobState::Running);
        write_status(&root, &old).expect("seed old snapshot");
        let new = JobStatus { state: JobState::Completed, ..old.clone() };

        // Probe run: enumerate the ops one status transition performs.
        let probe = FaultFs::new(FaultPlan::none());
        write_status_with(&*probe, &root, &new).expect("probe transition");
        let n_ops = probe.op_count();
        assert!(n_ops >= 5, "create_dir + write + sync + rename + sync_dir, got {n_ops}");
        write_status(&root, &old).expect("reset to old snapshot");

        let dir = job_dir(&root, old.id);
        for k in 0..n_ops {
            for kind in FaultKind::ALL {
                let faulty = FaultFs::new(FaultPlan::fail_op(k, kind));
                let result = write_status_with(&*faulty, &root, &new);
                assert!(result.is_err(), "op {k} fault {kind:?} must surface");
                // No scratch: nothing but status.json (and the CANCEL-free
                // job layout) may remain.
                for entry in fs::read_dir(&dir).expect("scan job dir") {
                    let name = entry.expect("entry").file_name();
                    let name = name.to_string_lossy().into_owned();
                    assert!(
                        !name.starts_with(".tmp-"),
                        "op {k} fault {kind:?} leaked scratch {name}"
                    );
                }
                // A reader still sees a coherent snapshot — old or new,
                // never torn (rename is atomic; the tmp was fsynced).
                let seen = read_status(&dir).expect("snapshot stays readable");
                assert!(seen == old || seen == new, "torn snapshot: {seen:?}");
                // Retry on a healed filesystem lands the transition.
                write_status(&root, &new).expect("retry succeeds");
                write_status(&root, &old).expect("reset for next k");
            }
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_lists_empty() {
        let ghost = std::env::temp_dir().join("minoaner-jobs-ctl-does-not-exist");
        assert!(list_statuses(&ghost).expect("missing root is empty").is_empty());
    }

    #[test]
    fn cancel_markers_round_trip() {
        let root = std::env::temp_dir().join(format!("minoaner-jobs-cxl-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let status = sample(4, JobState::Running);
        write_status(&root, &status).expect("write");
        let dir = job_dir(&root, status.id);
        assert_eq!(cancel_request(&dir), None);
        assert!(request_cancel(&root, status.id, CancelReason::User).expect("request"));
        assert_eq!(cancel_request(&dir), Some(CancelReason::User));
        // Unknown job: nothing written, reported as absent.
        assert!(!request_cancel(&root, JobId::from_ordinal(999), CancelReason::User)
            .expect("unknown job"));
        // A corrupt marker still cancels (degrades to User).
        fs::write(dir.join("CANCEL"), b"garbage").expect("corrupt marker");
        assert_eq!(cancel_request(&dir), Some(CancelReason::User));
        let _ = fs::remove_dir_all(&root);
    }
}
