//! Job identity, specification and lifecycle state.
//!
//! The lifecycle is a small state machine (DESIGN.md §14):
//!
//! ```text
//! submit ──► Queued ──► Running ──► Completed
//!               │           │
//!               │           ├──► Failed      (task fault / panic / I/O)
//!               └───────────┴──► Cancelled   (user / deadline / shutdown)
//! ```
//!
//! `Completed`, `Failed` and `Cancelled` are terminal. A shed submission
//! never enters the machine at all — admission control rejects it with a
//! structured [`ShedReason`](crate::ShedReason) before a [`JobId`] is
//! allocated.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use minoaner_dataflow::{CancelToken, Deadline, Executor, RunTrace};

/// Identity of a submitted job, unique within its scheduler (and, through
/// the control plane's per-job directories, within a checkpoint root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Constructs an id from its ordinal. Scheduler-internal; exposed so
    /// the control plane can rebuild ids from directory names.
    pub fn from_ordinal(n: u64) -> Self {
        Self(n)
    }

    /// The ordinal behind the id.
    pub fn ordinal(self) -> u64 {
        self.0
    }

    /// Parses the display form (`j0042`), with or without the `j` prefix.
    pub fn parse(s: &str) -> Option<Self> {
        let digits = s.strip_prefix('j').unwrap_or(s);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u64>().ok().map(Self)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{:04}", self.0)
    }
}

/// Scheduling priority. Higher priorities dispatch strictly first;
/// within a priority, submission order wins (no reordering, no starvation
/// of earlier submissions by later equal-priority ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    Low,
    #[default]
    Normal,
    High,
}

impl Priority {
    /// Stable lowercase name, used in status files and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses the stable name produced by [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a job asks for at submission: a human-readable name, a priority,
/// and the resources admission control charges against the global budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable job name (shown by `minoaner jobs list`).
    pub name: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Worker threads the job's executor will use (≥ 1; charged against
    /// [`ResourceBudget::workers`](crate::ResourceBudget::workers)).
    pub workers: usize,
    /// Declared memory need in bytes (charged against
    /// [`ResourceBudget::memory_bytes`](crate::ResourceBudget::memory_bytes);
    /// `0` = charges nothing).
    pub memory_bytes: u64,
    /// Wall-clock budget from submission. When it expires, the watchdog
    /// cancels the job with
    /// [`CancelReason::Deadline`](minoaner_dataflow::CancelReason::Deadline)
    /// — cooperatively, by clamping every stage deadline of the job's
    /// executor.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A spec with defaults: normal priority, one worker, no declared
    /// memory, no deadline.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            priority: Priority::Normal,
            workers: 1,
            memory_bytes: 0,
            deadline: None,
        }
    }

    /// Returns `self` with the priority set.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns `self` asking for `workers` workers (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns `self` declaring a memory need in bytes.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Returns `self` with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Lifecycle state of a job (see the module docs for the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for resources.
    Queued,
    /// Dispatched; its runner thread is executing the work.
    Running,
    /// The work returned `Ok` (terminal).
    Completed,
    /// The work returned a non-cancellation error or panicked (terminal).
    Failed,
    /// The work was cancelled — by request, deadline or shutdown
    /// (terminal).
    Cancelled,
}

impl JobState {
    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Cancelled)
    }

    /// Stable lowercase name, used in status files.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses the stable name produced by [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time snapshot of one job, as reported by
/// [`JobScheduler::status`](crate::JobScheduler::status) and persisted by
/// the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    pub id: JobId,
    pub name: String,
    pub priority: Priority,
    pub workers: usize,
    pub memory_bytes: u64,
    pub state: JobState,
    /// Why the job was (or is being) cancelled, if it was.
    pub cancel_reason: Option<minoaner_dataflow::CancelReason>,
    /// The failure or cancellation message, for terminal non-success
    /// states.
    pub error: Option<String>,
    /// The completed job's one-line summary.
    pub summary: Option<String>,
}

/// What a job's work closure returns on success.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// One-line human-readable result (e.g. `"41 matches, digest 0x…"`).
    pub summary: String,
    /// The run's trace, if the work captured one.
    pub trace: Option<RunTrace>,
}

impl JobOutput {
    /// An output with a summary and no trace.
    pub fn summary(text: impl Into<String>) -> Self {
        Self { summary: text.into(), trace: None }
    }

    /// Returns `self` carrying a [`RunTrace`].
    pub fn with_trace(mut self, trace: RunTrace) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Everything a job's work closure receives from the scheduler: its
/// identity, its admission grant, its cancellation token and deadline,
/// and (when the scheduler has a control root) its private directory.
#[derive(Debug, Clone)]
pub struct JobContext {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) workers: usize,
    pub(crate) cancel: CancelToken,
    pub(crate) deadline: Option<Deadline>,
    pub(crate) job_dir: Option<PathBuf>,
    pub(crate) memory_bytes: u64,
}

impl JobContext {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The worker count granted at admission.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The job's cancellation token. Long-running work outside executor
    /// stages should poll [`CancelToken::is_cancelled`] at its own safe
    /// points.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The job's wall-clock deadline, if one was set.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The job's private directory under the scheduler's control root
    /// (status file, checkpoints, trace artifacts), if a root is
    /// configured.
    pub fn job_dir(&self) -> Option<&PathBuf> {
        self.job_dir.as_ref()
    }

    /// The memory grant from the job's [`ResourceBudget`](crate::budget::ResourceBudget)
    /// admission, in bytes (`0` = unmetered). Work closures that resolve
    /// under this grant can hand it to the dataflow layer as a
    /// [`MemoryBudget`](minoaner_dataflow::MemoryBudget) so shuffle stages
    /// spill instead of exceeding what admission reserved.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// An executor sized to the job's grant, wired to its cancellation
    /// token and deadline: stages run on `workers()` workers, every stage
    /// deadline is clamped to the job deadline, and cancellation surfaces
    /// as [`DataflowError::Cancelled`](minoaner_dataflow::DataflowError).
    pub fn executor(&self) -> Executor {
        let mut exec = Executor::new(self.workers);
        exec.set_cancel_token(self.cancel.clone());
        exec.set_deadline(self.deadline);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_displays_and_parses() {
        let id = JobId::from_ordinal(42);
        assert_eq!(id.to_string(), "j0042");
        assert_eq!(JobId::parse("j0042"), Some(id));
        assert_eq!(JobId::parse("42"), Some(id));
        assert_eq!(JobId::parse("j"), None);
        assert_eq!(JobId::parse("jx1"), None);
        assert_eq!(JobId::parse(""), None);
    }

    #[test]
    fn priority_orders_high_above_normal_above_low() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }

    #[test]
    fn state_terminality_and_names() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [JobState::Completed, JobState::Failed, JobState::Cancelled] {
            assert!(s.is_terminal());
        }
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
    }

    #[test]
    fn spec_builder_clamps_workers() {
        let spec = JobSpec::new("x").with_workers(0);
        assert_eq!(spec.workers, 1);
        let spec = JobSpec::new("x")
            .with_priority(Priority::High)
            .with_workers(4)
            .with_memory_bytes(1 << 20)
            .with_deadline(Duration::from_secs(5));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.workers, 4);
        assert_eq!(spec.memory_bytes, 1 << 20);
        assert_eq!(spec.deadline, Some(Duration::from_secs(5)));
    }

    #[test]
    fn context_executor_carries_the_grant() {
        let ctx = JobContext {
            id: JobId::from_ordinal(1),
            name: "t".into(),
            workers: 3,
            cancel: CancelToken::new(),
            deadline: None,
            job_dir: None,
            memory_bytes: 1 << 20,
        };
        let exec = ctx.executor();
        assert_eq!(exec.workers(), 3);
        assert_eq!(ctx.memory_bytes(), 1 << 20);
        assert!(!exec.cancel_token().is_cancelled());
        ctx.cancel_token().cancel(minoaner_dataflow::CancelReason::User);
        assert!(exec.cancel_token().is_cancelled(), "executor shares the job token");
    }
}
