//! The deterministic priority wait queue.
//!
//! Ordering is *strict*: the head is the highest-priority, earliest-
//! submitted waiting job, and dispatch never looks past it. If the head
//! does not currently fit the free budget, lower-priority (or later)
//! jobs wait behind it even when they would fit — deliberate head-of-line
//! semantics that keep dispatch order a pure function of (priority,
//! submission order) and make large jobs immune to starvation by a stream
//! of small ones. Backpressure comes from the queue bound, not from
//! reordering.

use std::collections::BTreeMap;

use crate::job::{JobId, Priority};

/// Key ordering the queue: higher priority first, then earlier submission
/// (smaller sequence number) first. `BTreeMap` iterates ascending, so the
/// priority is stored inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueueKey {
    inverted_priority: u8,
    seq: u64,
}

impl QueueKey {
    fn new(priority: Priority, seq: u64) -> Self {
        let inverted_priority = match priority {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        };
        Self { inverted_priority, seq }
    }
}

/// The wait queue: a total order over waiting jobs with O(log n)
/// push/pop/remove. Determinism witness: two schedulers fed the same
/// submission sequence dispatch in the same order, regardless of thread
/// timing (see `scheduler.rs` tests).
#[derive(Debug, Default)]
pub(crate) struct PendingQueue {
    entries: BTreeMap<QueueKey, JobId>,
    by_id: BTreeMap<JobId, QueueKey>,
}

impl PendingQueue {
    /// Enqueues a job under `(priority, seq)`.
    pub(crate) fn push(&mut self, priority: Priority, seq: u64, id: JobId) {
        let key = QueueKey::new(priority, seq);
        self.entries.insert(key, id);
        self.by_id.insert(id, key);
    }

    /// The head of the queue, if any.
    pub(crate) fn peek(&self) -> Option<JobId> {
        self.entries.values().next().copied()
    }

    /// Removes and returns the head.
    pub(crate) fn pop(&mut self) -> Option<JobId> {
        let (&key, &id) = self.entries.iter().next()?;
        self.entries.remove(&key);
        self.by_id.remove(&id);
        Some(id)
    }

    /// Removes a specific job (cancel-while-queued). Returns whether it
    /// was present.
    pub(crate) fn remove(&mut self, id: JobId) -> bool {
        match self.by_id.remove(&id) {
            Some(key) => self.entries.remove(&key).is_some(),
            None => false,
        }
    }

    /// Number of waiting jobs.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> JobId {
        JobId::from_ordinal(n)
    }

    #[test]
    fn strict_priority_then_submission_order() {
        let mut q = PendingQueue::default();
        q.push(Priority::Low, 0, id(0));
        q.push(Priority::High, 1, id(1));
        q.push(Priority::Normal, 2, id(2));
        q.push(Priority::High, 3, id(3));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![id(1), id(3), id(2), id(0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = PendingQueue::default();
        q.push(Priority::Normal, 0, id(7));
        assert_eq!(q.peek(), Some(id(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(id(7)));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn remove_unlinks_both_indexes() {
        let mut q = PendingQueue::default();
        q.push(Priority::High, 0, id(1));
        q.push(Priority::Low, 1, id(2));
        assert!(q.remove(id(1)));
        assert!(!q.remove(id(1)), "double remove is a no-op");
        assert_eq!(q.pop(), Some(id(2)));
        assert!(q.is_empty());
    }
}
