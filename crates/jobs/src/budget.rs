//! The global resource budget admission control charges jobs against.

use crate::error::ShedReason;
use crate::job::JobSpec;

/// Total resources a [`JobScheduler`](crate::JobScheduler) may hand out
/// at once, plus the bounds that keep overload graceful: a cap on
/// concurrently running jobs and a cap on the wait queue (beyond which
/// submissions are shed, never queued unboundedly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Total worker threads across all running jobs.
    pub workers: usize,
    /// Total declared memory across all running jobs, in bytes.
    pub memory_bytes: u64,
    /// Maximum concurrently running jobs (defaults to `workers`: each job
    /// needs at least one worker anyway).
    pub max_running: usize,
    /// Maximum jobs waiting in the queue. `0` means "run now or shed".
    pub max_queued: usize,
}

impl ResourceBudget {
    /// Default queue bound: generous enough for bursts, small enough that
    /// a stuck scheduler shows up as shedding, not as silent backlog.
    pub const DEFAULT_MAX_QUEUED: usize = 64;

    /// A budget of `workers` workers and `memory_bytes` bytes, with
    /// `max_running = workers` and the default queue bound.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, memory_bytes: u64) -> Self {
        assert!(workers >= 1, "at least one worker required in the budget");
        Self { workers, memory_bytes, max_running: workers, max_queued: Self::DEFAULT_MAX_QUEUED }
    }

    /// Returns `self` with the running-jobs cap set (clamped to ≥ 1).
    pub fn with_max_running(mut self, max_running: usize) -> Self {
        self.max_running = max_running.max(1);
        self
    }

    /// Returns `self` with the queue bound set.
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Static admission: can this spec *ever* run under the budget?
    /// A spec that exceeds a total is shed immediately — queuing it would
    /// wedge the strict-order queue forever.
    pub fn admit(&self, spec: &JobSpec) -> Result<(), ShedReason> {
        let workers = spec.workers.max(1);
        if workers > self.workers {
            return Err(ShedReason::WorkersExceedBudget { requested: workers, budget: self.workers });
        }
        if spec.memory_bytes > self.memory_bytes {
            return Err(ShedReason::MemoryExceedsBudget {
                requested: spec.memory_bytes,
                budget: self.memory_bytes,
            });
        }
        Ok(())
    }

    /// Dynamic fit: can this spec start *now*, given what's in use?
    pub(crate) fn fits(&self, spec: &JobSpec, workers_in_use: usize, memory_in_use: u64) -> bool {
        let workers = spec.workers.max(1);
        workers_in_use + workers <= self.workers
            && memory_in_use + spec.memory_bytes <= self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_admission_sheds_impossible_jobs() {
        let budget = ResourceBudget::new(4, 1000);
        assert!(budget.admit(&JobSpec::new("ok").with_workers(4)).is_ok());
        assert_eq!(
            budget.admit(&JobSpec::new("big").with_workers(5)),
            Err(ShedReason::WorkersExceedBudget { requested: 5, budget: 4 })
        );
        assert_eq!(
            budget.admit(&JobSpec::new("fat").with_memory_bytes(1001)),
            Err(ShedReason::MemoryExceedsBudget { requested: 1001, budget: 1000 })
        );
    }

    #[test]
    fn zero_worker_specs_are_charged_one() {
        let budget = ResourceBudget::new(1, 0);
        let mut spec = JobSpec::new("tiny");
        spec.workers = 0; // bypass the builder clamp on purpose
        assert!(budget.admit(&spec).is_ok());
        assert!(budget.fits(&spec, 0, 0));
        assert!(!budget.fits(&spec, 1, 0));
    }

    #[test]
    fn dynamic_fit_tracks_the_ledger() {
        let budget = ResourceBudget::new(4, 100);
        let spec = JobSpec::new("j").with_workers(2).with_memory_bytes(60);
        assert!(budget.fits(&spec, 0, 0));
        assert!(budget.fits(&spec, 2, 40));
        assert!(!budget.fits(&spec, 3, 0), "workers would exceed the total");
        assert!(!budget.fits(&spec, 0, 41), "memory would exceed the total");
    }

    #[test]
    fn defaults_bound_running_and_queue() {
        let b = ResourceBudget::new(8, 0);
        assert_eq!(b.max_running, 8);
        assert_eq!(b.max_queued, ResourceBudget::DEFAULT_MAX_QUEUED);
        assert_eq!(b.with_max_running(0).max_running, 1);
        assert_eq!(b.with_max_queued(3).max_queued, 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_budget_rejected() {
        ResourceBudget::new(0, 0);
    }
}
