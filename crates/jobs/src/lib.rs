//! Job orchestration for MinoanER pipelines: admission control against a
//! global resource budget, a bounded priority queue, cooperative
//! cancellation, and a file-based control plane for cross-process
//! `list`/`status`/`cancel`.
//!
//! # Shape
//!
//! - [`ResourceBudget`] — the global worker/memory budget plus the
//!   bounds (max running, max queued) that keep overload graceful.
//! - [`JobSpec`] / [`JobId`] / [`JobState`] / [`JobStatus`] — what a job
//!   asks for, and its lifecycle (DESIGN.md §14).
//! - [`JobScheduler`] — submit / cancel / status / list / wait /
//!   shutdown. Over-budget submissions are *shed* with a structured
//!   [`ShedReason`], never queued unboundedly.
//! - [`JobContext`] — handed to each job's work closure; builds an
//!   executor wired to the job's [`CancelToken`](minoaner_dataflow::CancelToken)
//!   and wall-clock deadline.
//! - [`control`] — the `job-<id>/status.json` + `CANCEL` marker
//!   protocol behind `minoaner jobs list|status|cancel`.
//!
//! # Invariants
//!
//! Cancellation is cooperative and checkpoint-safe: the scheduler only
//! latches a token; the pipeline polls it at stage barriers *after* each
//! checkpoint barrier commits, so a cancelled job's checkpoint directory
//! only ever holds complete, resumable barriers. Determinism:
//! scheduling state lives in `BTreeMap`s and dispatch order is a pure
//! function of (priority, submission order) — two schedulers fed the
//! same submission sequence dispatch identically.

pub mod budget;
pub mod control;
pub mod error;
pub mod job;
pub(crate) mod queue;
pub mod scheduler;

pub use budget::ResourceBudget;
pub use control::{ControlError, STATUS_SCHEMA_VERSION};
pub use error::ShedReason;
pub use job::{JobContext, JobId, JobOutput, JobSpec, JobState, JobStatus, Priority};
pub use scheduler::{JobScheduler, JobWork};
