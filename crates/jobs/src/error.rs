//! Structured admission rejections.
//!
//! Admission control *sheds* work it cannot take instead of queuing it
//! unboundedly: a rejected submission never allocates a [`JobId`]
//! (crate::JobId), never enters the queue, and carries a precise,
//! machine-readable reason the caller can act on (retry later, lower the
//! ask, pick another scheduler).

use std::fmt;

/// Why a submission was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The job asks for more workers than the *total* budget — it could
    /// never run, no matter how long it waited.
    WorkersExceedBudget {
        /// Workers the spec asked for.
        requested: usize,
        /// The scheduler's total worker budget.
        budget: usize,
    },
    /// The job declares more memory than the *total* budget — it could
    /// never run.
    MemoryExceedsBudget {
        /// Bytes the spec declared.
        requested: u64,
        /// The scheduler's total memory budget in bytes.
        budget: u64,
    },
    /// The job fits the budget but cannot start now, and the wait queue
    /// is at capacity. The overload-shedding path: the caller should back
    /// off and resubmit.
    QueueFull {
        /// Jobs currently waiting.
        queued: usize,
        /// The queue's capacity.
        max_queued: usize,
    },
    /// The scheduler is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::WorkersExceedBudget { requested, budget } => write!(
                f,
                "shed: job requests {requested} worker(s) but the total budget is {budget}"
            ),
            ShedReason::MemoryExceedsBudget { requested, budget } => write!(
                f,
                "shed: job declares {requested} byte(s) of memory but the total budget is {budget}"
            ),
            ShedReason::QueueFull { queued, max_queued } => write!(
                f,
                "shed: wait queue is full ({queued}/{max_queued}); back off and resubmit"
            ),
            ShedReason::ShuttingDown => write!(f, "shed: scheduler is shutting down"),
        }
    }
}

impl std::error::Error for ShedReason {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_limit() {
        let w = ShedReason::WorkersExceedBudget { requested: 9, budget: 4 };
        assert!(w.to_string().contains("9 worker(s)") && w.to_string().contains("budget is 4"));
        let m = ShedReason::MemoryExceedsBudget { requested: 10, budget: 5 };
        assert!(m.to_string().contains("10 byte(s)"));
        let q = ShedReason::QueueFull { queued: 3, max_queued: 3 };
        assert!(q.to_string().contains("3/3"));
        assert!(ShedReason::ShuttingDown.to_string().contains("shutting down"));
    }
}
