//! The multi-job scheduler: bounded concurrency, priority dispatch,
//! admission control and cooperative cancellation over a shared
//! [`ResourceBudget`].
//!
//! One scheduler owns one budget. Submissions pass three admission gates
//! in order — shutting-down shed, static budget check (could this job
//! *ever* run?), and the bounded wait queue (run now, or queue if there
//! is room, or shed with [`ShedReason::QueueFull`]) — so overload always
//! surfaces as a structured rejection at submit time, never as an
//! unbounded backlog.
//!
//! Dispatch is strict head-of-line over `(priority, submission order)`
//! (see `queue.rs`); each dispatched job runs its work closure on a
//! dedicated runner thread with a [`JobContext`] carrying the job's
//! [`CancelToken`] and wall-clock [`Deadline`]. Cancellation is
//! cooperative end to end: the scheduler only ever latches the token —
//! the job observes it at its next safe point (stage barrier, partition
//! loop, checkpoint barrier) and unwinds with
//! [`DataflowError::Cancelled`], which the runner maps to
//! [`JobState::Cancelled`]. Panics in job work are caught and mapped to
//! [`JobState::Failed`]; they never take the scheduler down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use parking_lot::{Condvar, Mutex};

use minoaner_dataflow::vfs::{self, VfsRef};
use minoaner_dataflow::{CancelReason, CancelToken, DataflowError, Deadline};

use crate::budget::ResourceBudget;
use crate::control;
use crate::error::ShedReason;
use crate::job::{JobContext, JobId, JobOutput, JobSpec, JobState, JobStatus};
use crate::queue::PendingQueue;

/// A job's work: runs on a runner thread with the job's [`JobContext`].
/// Return `Err(DataflowError::Cancelled { .. })` to finish as
/// [`JobState::Cancelled`]; any other error (or a panic) finishes as
/// [`JobState::Failed`].
pub type JobWork = Box<dyn FnOnce(&JobContext) -> Result<JobOutput, DataflowError> + Send + 'static>;

/// Everything the scheduler tracks about one admitted job.
#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    deadline: Option<Deadline>,
    error: Option<String>,
    output: Option<JobOutput>,
}

#[derive(Default)]
struct SchedState {
    next_ordinal: u64,
    next_seq: u64,
    shutting_down: bool,
    queue: PendingQueue,
    /// Work for jobs that have not been dispatched yet.
    work: std::collections::BTreeMap<JobId, JobWork>,
    records: std::collections::BTreeMap<JobId, JobRecord>,
    workers_in_use: usize,
    memory_in_use: u64,
    running: usize,
    handles: Vec<JoinHandle<()>>,
}

struct SchedInner {
    budget: ResourceBudget,
    root: Option<PathBuf>,
    /// The filesystem the control plane writes through — [`RealFs`]
    /// (via [`vfs::default_vfs`]) in production, a
    /// [`FaultFs`](minoaner_dataflow::vfs::FaultFs) under the chaos sweep.
    vfs: VfsRef,
    /// How many status-file writes have failed. This is the graceful
    /// degradation policy for the control plane made observable: a
    /// status-write failure must never kill a healthy job, so failures
    /// are counted here (and the job carries on) instead of propagating.
    status_write_failures: AtomicU64,
    state: Mutex<SchedState>,
    /// Signalled on every terminal transition (and on dispatch), so
    /// `wait`/`wait_all` can block instead of polling.
    terminal: Condvar,
}

impl SchedInner {
    /// Best-effort status persistence: control-plane visibility must not
    /// fail the job, so I/O errors are swallowed here — but counted, so
    /// operators (and the chaos harness) can tell a silent control plane
    /// from a healthy one.
    fn persist(&self, status: &JobStatus) {
        if let Some(root) = &self.root {
            if control::write_status_with(&*self.vfs, root, status).is_err() {
                self.status_write_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The scheduler handle. Cheap to clone; all clones share one state.
#[derive(Clone)]
pub struct JobScheduler {
    inner: Arc<SchedInner>,
}

impl JobScheduler {
    /// A scheduler over `budget` with no control root: pure in-process
    /// orchestration, no status files.
    pub fn new(budget: ResourceBudget) -> Self {
        Self::build(budget, None, vfs::default_vfs())
    }

    /// A scheduler that mirrors every job-state transition into
    /// `root/job-<id>/status.json` and honours `CANCEL` markers on
    /// [`poll_control`](Self::poll_control).
    pub fn with_control_root(budget: ResourceBudget, root: impl Into<PathBuf>) -> Self {
        Self::build(budget, Some(root.into()), vfs::default_vfs())
    }

    /// [`with_control_root`](Self::with_control_root) over an explicit
    /// [`Vfs`](minoaner_dataflow::vfs::Vfs) — the chaos harness's
    /// injection point for control-plane writes.
    pub fn with_control_root_vfs(
        budget: ResourceBudget,
        root: impl Into<PathBuf>,
        vfs: VfsRef,
    ) -> Self {
        Self::build(budget, Some(root.into()), vfs)
    }

    fn build(budget: ResourceBudget, root: Option<PathBuf>, vfs: VfsRef) -> Self {
        Self {
            inner: Arc::new(SchedInner {
                budget,
                root,
                vfs,
                status_write_failures: AtomicU64::new(0),
                state: Mutex::new(SchedState::default()),
                terminal: Condvar::new(),
            }),
        }
    }

    /// How many control-plane status writes have failed so far. Always
    /// zero without a control root; under a faulted filesystem this counts
    /// the transitions that went unrecorded while the jobs themselves
    /// carried on.
    pub fn status_write_failures(&self) -> u64 {
        self.inner.status_write_failures.load(Ordering::Relaxed)
    }

    /// The budget this scheduler admits against.
    pub fn budget(&self) -> ResourceBudget {
        self.inner.budget
    }

    /// The control root, if one is configured.
    pub fn control_root(&self) -> Option<&PathBuf> {
        self.inner.root.as_ref()
    }

    /// Submits a job. On admission the job is `Queued` (and dispatched
    /// immediately if it is next in line and fits the free budget); on
    /// rejection nothing is retained — no id, no queue slot, no record.
    ///
    /// The job's wall-clock deadline (if any) starts at submission, so
    /// time spent waiting in the queue counts against it.
    pub fn submit(
        &self,
        spec: JobSpec,
        work: impl FnOnce(&JobContext) -> Result<JobOutput, DataflowError> + Send + 'static,
    ) -> Result<JobId, ShedReason> {
        let mut st = self.inner.state.lock();
        if st.shutting_down {
            return Err(ShedReason::ShuttingDown);
        }
        self.inner.budget.admit(&spec)?;
        // Would this job dispatch immediately? Only if it would be the
        // queue head (strictly higher priority than the current head, or
        // an empty queue), a running slot is free, and the resources fit.
        let would_be_head = match st.queue.peek() {
            None => true,
            Some(head) => {
                st.records.get(&head).is_some_and(|rec| spec.priority > rec.spec.priority)
            }
        };
        let can_start_now = would_be_head
            && st.running < self.inner.budget.max_running
            && self.inner.budget.fits(&spec, st.workers_in_use, st.memory_in_use);
        if !can_start_now && st.queue.len() >= self.inner.budget.max_queued {
            return Err(ShedReason::QueueFull {
                queued: st.queue.len(),
                max_queued: self.inner.budget.max_queued,
            });
        }
        let id = JobId::from_ordinal(st.next_ordinal);
        st.next_ordinal += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let priority = spec.priority;
        let record = JobRecord {
            deadline: spec.deadline.map(Deadline::after),
            spec,
            state: JobState::Queued,
            cancel: CancelToken::new(),
            error: None,
            output: None,
        };
        self.inner.persist(&Self::status_of(id, &record));
        st.records.insert(id, record);
        st.work.insert(id, Box::new(work));
        st.queue.push(priority, seq, id);
        self.dispatch_locked(&mut st);
        Ok(id)
    }

    /// Requests cancellation. A `Queued` job is finalized immediately (it
    /// never runs); a `Running` job has its token latched and finishes as
    /// `Cancelled` when its work observes the token and unwinds. Returns
    /// `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId, reason: CancelReason) -> bool {
        let mut st = self.inner.state.lock();
        let Some(record) = st.records.get_mut(&id) else { return false };
        match record.state {
            JobState::Queued => {
                let _ = record.cancel.cancel(reason);
                record.state = JobState::Cancelled;
                record.error = Some(format!("cancelled ({reason}) before dispatch"));
                let status = Self::status_of(id, record);
                st.queue.remove(id);
                st.work.remove(&id);
                self.inner.persist(&status);
                self.inner.terminal.notify_all();
                // Removing a queue entry can unblock the new head.
                self.dispatch_locked(&mut st);
                true
            }
            JobState::Running => record.cancel.cancel(reason) || record.cancel.reason().is_some(),
            _ => false,
        }
    }

    /// A point-in-time status snapshot, or `None` for unknown ids.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock();
        st.records.get(&id).map(|record| Self::status_of(id, record))
    }

    /// Status snapshots of every job this scheduler has admitted,
    /// ascending by id.
    pub fn list(&self) -> Vec<JobStatus> {
        let st = self.inner.state.lock();
        st.records.iter().map(|(&id, record)| Self::status_of(id, record)).collect()
    }

    /// Blocks until `id` reaches a terminal state and returns its final
    /// status (`None` for unknown ids).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock();
        loop {
            let record = st.records.get(&id)?;
            if record.state.is_terminal() {
                return Some(Self::status_of(id, record));
            }
            self.inner.terminal.wait(&mut st);
        }
    }

    /// Blocks until every admitted job is terminal, joins all runner
    /// threads, and returns the final statuses ascending by id.
    pub fn wait_all(&self) -> Vec<JobStatus> {
        let mut st = self.inner.state.lock();
        loop {
            if st.records.values().all(|record| record.state.is_terminal()) {
                let handles = std::mem::take(&mut st.handles);
                let statuses: Vec<JobStatus> =
                    st.records.iter().map(|(&id, record)| Self::status_of(id, record)).collect();
                drop(st);
                for handle in handles {
                    let _ = handle.join();
                }
                return statuses;
            }
            self.inner.terminal.wait(&mut st);
        }
    }

    /// Shuts down: refuses new submissions, cancels every queued job and
    /// latches every running job's token with
    /// [`CancelReason::Shutdown`], then waits for all jobs to reach a
    /// terminal state. Returns the final statuses.
    pub fn shutdown(&self) -> Vec<JobStatus> {
        {
            let mut st = self.inner.state.lock();
            st.shutting_down = true;
            while let Some(id) = st.queue.pop() {
                st.work.remove(&id);
                if let Some(record) = st.records.get_mut(&id) {
                    let _ = record.cancel.cancel(CancelReason::Shutdown);
                    record.state = JobState::Cancelled;
                    record.error = Some("cancelled (shutdown) before dispatch".to_owned());
                    self.inner.persist(&Self::status_of(id, record));
                }
            }
            for record in st.records.values_mut() {
                if record.state == JobState::Running {
                    let _ = record.cancel.cancel(CancelReason::Shutdown);
                }
            }
            self.inner.terminal.notify_all();
        }
        self.wait_all()
    }

    /// Applies pending control-plane cancel requests (`CANCEL` markers
    /// dropped by `minoaner jobs cancel`) to live jobs. Returns how many
    /// cancellations were applied. No-op without a control root; callers
    /// (e.g. the CLI wait loop) invoke this periodically — the scheduler
    /// runs no background poller of its own.
    pub fn poll_control(&self) -> usize {
        let Some(root) = self.inner.root.clone() else { return 0 };
        let live: Vec<JobId> = {
            let st = self.inner.state.lock();
            st.records
                .iter()
                .filter(|(_, record)| !record.state.is_terminal())
                .map(|(&id, _)| id)
                .collect()
        };
        let mut applied = 0;
        for id in live {
            if let Some(reason) =
                control::cancel_request_with(&*self.inner.vfs, &control::job_dir(&root, id))
            {
                if self.cancel(id, reason) {
                    applied += 1;
                }
            }
        }
        applied
    }

    /// Dispatches from the queue head while a running slot and the
    /// budget allow. Strict order: if the head does not fit, nothing
    /// behind it is considered. Queued jobs whose token is already
    /// latched (or whose deadline expired while waiting) are finalized
    /// here without ever running.
    fn dispatch_locked(&self, st: &mut SchedState) {
        while st.running < self.inner.budget.max_running {
            let Some(head) = st.queue.peek() else { break };
            let Some(record) = st.records.get(&head) else {
                // Defensive: a queue entry without a record cannot run.
                st.queue.pop();
                st.work.remove(&head);
                continue;
            };
            let doomed = record
                .cancel
                .reason()
                .or_else(|| record.deadline.filter(|d| d.expired()).map(|_| CancelReason::Deadline));
            if let Some(reason) = doomed {
                st.queue.pop();
                st.work.remove(&head);
                if let Some(record) = st.records.get_mut(&head) {
                    let _ = record.cancel.cancel(reason);
                    record.state = JobState::Cancelled;
                    record.error = Some(format!("cancelled ({reason}) before dispatch"));
                    self.inner.persist(&Self::status_of(head, record));
                }
                self.inner.terminal.notify_all();
                continue;
            }
            if !self.inner.budget.fits(&record.spec, st.workers_in_use, st.memory_in_use) {
                break;
            }
            st.queue.pop();
            let Some(work) = st.work.remove(&head) else {
                // Defensive: dispatched twice — finalize as failed rather
                // than wedging the queue.
                if let Some(record) = st.records.get_mut(&head) {
                    record.state = JobState::Failed;
                    record.error = Some("internal: job work missing at dispatch".to_owned());
                    self.inner.persist(&Self::status_of(head, record));
                }
                self.inner.terminal.notify_all();
                continue;
            };
            let Some(record) = st.records.get_mut(&head) else { continue };
            record.state = JobState::Running;
            let workers = record.spec.workers.max(1);
            let ctx = JobContext {
                id: head,
                name: record.spec.name.clone(),
                workers,
                cancel: record.cancel.clone(),
                deadline: record.deadline,
                job_dir: self.inner.root.as_ref().map(|root| control::job_dir(root, head)),
                memory_bytes: record.spec.memory_bytes,
            };
            let status = Self::status_of(head, record);
            let memory = record.spec.memory_bytes;
            st.workers_in_use += workers;
            st.memory_in_use += memory;
            st.running += 1;
            self.inner.persist(&status);
            let sched = self.clone();
            let spawned = thread::Builder::new()
                .name(format!("minoaner-{head}"))
                .spawn(move || sched.run_job(head, ctx, work));
            match spawned {
                Ok(handle) => st.handles.push(handle),
                Err(e) => {
                    // Could not spawn: refund the grant and fail the job.
                    st.workers_in_use -= workers;
                    st.memory_in_use -= memory;
                    st.running -= 1;
                    if let Some(record) = st.records.get_mut(&head) {
                        record.state = JobState::Failed;
                        record.error = Some(format!("failed to spawn runner thread: {e}"));
                        self.inner.persist(&Self::status_of(head, record));
                    }
                    self.inner.terminal.notify_all();
                }
            }
        }
    }

    /// Runner-thread body: run the work, map the result onto the state
    /// machine, refund the grant, and dispatch whatever the freed
    /// resources now admit.
    fn run_job(&self, id: JobId, ctx: JobContext, work: JobWork) {
        let result = catch_unwind(AssertUnwindSafe(|| work(&ctx)))
            .unwrap_or_else(|payload| Err(DataflowError::from_panic(payload)));
        let mut st = self.inner.state.lock();
        if let Some(record) = st.records.get_mut(&id) {
            match result {
                Ok(output) => {
                    record.state = JobState::Completed;
                    record.output = Some(output);
                }
                Err(e) => {
                    if let Some(reason) = e.cancel_reason() {
                        // Latch the token too, in case the work decided to
                        // cancel itself without going through it.
                        let _ = record.cancel.cancel(reason);
                        record.state = JobState::Cancelled;
                    } else {
                        record.state = JobState::Failed;
                    }
                    record.error = Some(e.to_string());
                }
            }
            let workers = record.spec.workers.max(1);
            let memory = record.spec.memory_bytes;
            let status = Self::status_of(id, record);
            st.workers_in_use -= workers;
            st.memory_in_use -= memory;
            st.running -= 1;
            self.inner.persist(&status);
        }
        self.inner.terminal.notify_all();
        self.dispatch_locked(&mut st);
    }

    fn status_of(id: JobId, record: &JobRecord) -> JobStatus {
        JobStatus {
            id,
            name: record.spec.name.clone(),
            priority: record.spec.priority,
            workers: record.spec.workers.max(1),
            memory_bytes: record.spec.memory_bytes,
            state: record.state,
            cancel_reason: record.cancel.reason(),
            error: record.error.clone(),
            summary: record.output.as_ref().map(|output| output.summary.clone()),
        }
    }
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("JobScheduler")
            .field("budget", &self.inner.budget)
            .field("root", &self.inner.root)
            .field("queued", &st.queue.len())
            .field("running", &st.running)
            .field("jobs", &st.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    use crate::job::Priority;

    /// A job that blocks until released, so tests control occupancy
    /// deterministically.
    fn gated_work(
        started: mpsc::Sender<JobId>,
        release: mpsc::Receiver<()>,
    ) -> impl FnOnce(&JobContext) -> Result<JobOutput, DataflowError> + Send + 'static {
        move |ctx| {
            started.send(ctx.id()).expect("report start");
            release.recv().expect("await release");
            Ok(JobOutput::summary(format!("{} done", ctx.id())))
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let sched = JobScheduler::new(ResourceBudget::new(2, 0));
        let id = sched
            .submit(JobSpec::new("unit"), |ctx| {
                assert_eq!(ctx.workers(), 1);
                Ok(JobOutput::summary("41 matches"))
            })
            .expect("admit");
        let status = sched.wait(id).expect("known job");
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.summary.as_deref(), Some("41 matches"));
        assert_eq!(status.error, None);
        assert_eq!(status.cancel_reason, None);
        sched.wait_all();
    }

    #[test]
    fn queue_full_sheds_instead_of_backlogging() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0).with_max_queued(1));
        let (started, on_start) = mpsc::channel();
        let (release, gate) = mpsc::channel();
        let first = sched.submit(JobSpec::new("occupant"), gated_work(started, gate)).expect("a");
        on_start.recv_timeout(Duration::from_secs(10)).expect("first starts");
        // One queue slot: the second job queues, the third is shed.
        let second =
            sched.submit(JobSpec::new("waits"), |_| Ok(JobOutput::summary("ok"))).expect("queues");
        let shed = sched.submit(JobSpec::new("shed"), |_| Ok(JobOutput::summary("never")));
        assert_eq!(shed, Err(ShedReason::QueueFull { queued: 1, max_queued: 1 }));
        release.send(()).expect("release");
        let statuses = sched.wait_all();
        assert_eq!(statuses.len(), 2, "the shed submission left no record");
        assert!(statuses.iter().all(|s| s.state == JobState::Completed));
        assert_eq!(sched.status(first).expect("first").state, JobState::Completed);
        assert_eq!(sched.status(second).expect("second").state, JobState::Completed);
    }

    #[test]
    fn dispatch_follows_priority_then_submission_order() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0));
        let (started, on_start) = mpsc::channel();
        let (release, gate) = mpsc::channel();
        sched
            .submit(JobSpec::new("occupant"), gated_work(started.clone(), gate))
            .expect("occupant");
        on_start.recv_timeout(Duration::from_secs(10)).expect("occupant starts");
        let log = Arc::new(Mutex::new(Vec::new()));
        let submit = |name: &str, priority: Priority| {
            let log = Arc::clone(&log);
            let name = name.to_owned();
            sched
                .submit(JobSpec::new(&name).with_priority(priority), move |_| {
                    log.lock().push(name);
                    Ok(JobOutput::summary("ok"))
                })
                .expect("queued")
        };
        submit("low", Priority::Low);
        submit("normal-1", Priority::Normal);
        submit("high", Priority::High);
        submit("normal-2", Priority::Normal);
        release.send(()).expect("release occupant");
        sched.wait_all();
        assert_eq!(*log.lock(), vec!["high", "normal-1", "normal-2", "low"]);
    }

    #[test]
    fn cancelling_a_queued_job_means_it_never_runs() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0));
        let (started, on_start) = mpsc::channel();
        let (release, gate) = mpsc::channel();
        sched.submit(JobSpec::new("occupant"), gated_work(started, gate)).expect("occupant");
        on_start.recv_timeout(Duration::from_secs(10)).expect("occupant starts");
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ran_clone = Arc::clone(&ran);
        let queued = sched
            .submit(JobSpec::new("victim"), move |_| {
                ran_clone.store(true, std::sync::atomic::Ordering::SeqCst);
                Ok(JobOutput::summary("should not happen"))
            })
            .expect("queued");
        assert!(sched.cancel(queued, CancelReason::User));
        let status = sched.status(queued).expect("victim");
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.cancel_reason, Some(CancelReason::User));
        assert!(!sched.cancel(queued, CancelReason::User), "already terminal");
        release.send(()).expect("release");
        sched.wait_all();
        assert!(!ran.load(std::sync::atomic::Ordering::SeqCst), "cancelled job must not run");
    }

    #[test]
    fn cancelling_a_running_job_is_cooperative() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0));
        let (started, on_start) = mpsc::channel();
        let id = sched
            .submit(JobSpec::new("loop"), move |ctx| {
                started.send(()).expect("report start");
                for _ in 0..100_000 {
                    if ctx.cancel_token().is_cancelled() {
                        return Err(DataflowError::Cancelled {
                            stage: "partition-loop".to_owned(),
                            reason: ctx.cancel_token().reason().unwrap_or(CancelReason::User),
                            completed: 3,
                            tasks: 8,
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Ok(JobOutput::summary("ran to completion"))
            })
            .expect("admit");
        on_start.recv_timeout(Duration::from_secs(10)).expect("job starts");
        assert!(sched.cancel(id, CancelReason::User));
        let status = sched.wait(id).expect("known");
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.cancel_reason, Some(CancelReason::User));
        let error = status.error.expect("cancellation message");
        assert!(error.contains("cancelled"), "got: {error}");
        sched.wait_all();
    }

    #[test]
    fn panic_in_job_work_fails_only_that_job() {
        let sched = JobScheduler::new(ResourceBudget::new(2, 0));
        let bad = sched
            .submit(JobSpec::new("panics"), |_| -> Result<JobOutput, DataflowError> {
                panic!("partition exploded")
            })
            .expect("admit bad");
        let good =
            sched.submit(JobSpec::new("fine"), |_| Ok(JobOutput::summary("ok"))).expect("admit ok");
        let bad_status = sched.wait(bad).expect("bad");
        assert_eq!(bad_status.state, JobState::Failed);
        assert!(bad_status.error.expect("message").contains("partition exploded"));
        let good_status = sched.wait(good).expect("good");
        assert_eq!(good_status.state, JobState::Completed);
        sched.wait_all();
    }

    #[test]
    fn oversized_submissions_are_shed_statically() {
        let sched = JobScheduler::new(ResourceBudget::new(2, 100));
        let too_wide = sched
            .submit(JobSpec::new("wide").with_workers(3), |_| Ok(JobOutput::summary("never")));
        assert_eq!(too_wide, Err(ShedReason::WorkersExceedBudget { requested: 3, budget: 2 }));
        let too_fat = sched
            .submit(JobSpec::new("fat").with_memory_bytes(101), |_| Ok(JobOutput::summary("never")));
        assert_eq!(too_fat, Err(ShedReason::MemoryExceedsBudget { requested: 101, budget: 100 }));
        assert!(sched.list().is_empty(), "shed submissions leave no record");
    }

    #[test]
    fn memory_budget_serializes_hungry_jobs() {
        let sched = JobScheduler::new(ResourceBudget::new(4, 100));
        let (started, on_start) = mpsc::channel();
        let (release, gate) = mpsc::channel();
        sched
            .submit(JobSpec::new("hog").with_memory_bytes(80), gated_work(started, gate))
            .expect("hog");
        on_start.recv_timeout(Duration::from_secs(10)).expect("hog starts");
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ran_clone = Arc::clone(&ran);
        sched
            .submit(JobSpec::new("also-hungry").with_memory_bytes(40), move |_| {
                ran_clone.store(true, std::sync::atomic::Ordering::SeqCst);
                Ok(JobOutput::summary("ok"))
            })
            .expect("queues behind the hog");
        // Workers are free (4 total, 1 used) but memory is not: the
        // second job must wait for the hog.
        thread::sleep(Duration::from_millis(50));
        assert!(!ran.load(std::sync::atomic::Ordering::SeqCst), "must wait for memory");
        release.send(()).expect("release hog");
        let statuses = sched.wait_all();
        assert!(statuses.iter().all(|s| s.state == JobState::Completed));
        assert!(ran.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn shutdown_cancels_queued_and_running_then_refuses_work() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0));
        let (started, on_start) = mpsc::channel();
        let running = sched
            .submit(JobSpec::new("running"), move |ctx| {
                started.send(()).expect("report start");
                for _ in 0..100_000 {
                    if ctx.cancel_token().is_cancelled() {
                        return Err(DataflowError::Cancelled {
                            stage: "barrier:blocks".to_owned(),
                            reason: ctx.cancel_token().reason().unwrap_or(CancelReason::User),
                            completed: 0,
                            tasks: 0,
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Ok(JobOutput::summary("outlived shutdown"))
            })
            .expect("running");
        on_start.recv_timeout(Duration::from_secs(10)).expect("starts");
        let queued =
            sched.submit(JobSpec::new("queued"), |_| Ok(JobOutput::summary("never"))).expect("q");
        let statuses = sched.shutdown();
        assert_eq!(statuses.len(), 2);
        for status in &statuses {
            assert_eq!(status.state, JobState::Cancelled, "{status:?}");
            assert_eq!(status.cancel_reason, Some(CancelReason::Shutdown), "{status:?}");
        }
        let _ = (running, queued);
        let refused = sched.submit(JobSpec::new("late"), |_| Ok(JobOutput::summary("no")));
        assert_eq!(refused, Err(ShedReason::ShuttingDown));
    }

    #[test]
    fn queued_job_with_expired_deadline_is_cancelled_at_dispatch() {
        let sched = JobScheduler::new(ResourceBudget::new(1, 0));
        let (started, on_start) = mpsc::channel();
        let (release, gate) = mpsc::channel();
        sched.submit(JobSpec::new("occupant"), gated_work(started, gate)).expect("occupant");
        on_start.recv_timeout(Duration::from_secs(10)).expect("occupant starts");
        let doomed = sched
            .submit(JobSpec::new("doomed").with_deadline(Duration::from_millis(1)), |_| {
                Ok(JobOutput::summary("never"))
            })
            .expect("queued");
        thread::sleep(Duration::from_millis(20));
        release.send(()).expect("release");
        let status = sched.wait(doomed).expect("doomed");
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.cancel_reason, Some(CancelReason::Deadline));
        sched.wait_all();
    }

    #[test]
    fn control_root_mirrors_transitions_and_honours_cancel_markers() {
        let root =
            std::env::temp_dir().join(format!("minoaner-jobs-sched-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let sched = JobScheduler::with_control_root(ResourceBudget::new(1, 0), &root);
        let (started, on_start) = mpsc::channel();
        let id = sched
            .submit(JobSpec::new("watched"), move |ctx| {
                started.send(()).expect("report start");
                for _ in 0..100_000 {
                    if ctx.cancel_token().is_cancelled() {
                        return Err(DataflowError::Cancelled {
                            stage: "barrier:graph".to_owned(),
                            reason: ctx.cancel_token().reason().unwrap_or(CancelReason::User),
                            completed: 2,
                            tasks: 2,
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Ok(JobOutput::summary("uncancelled"))
            })
            .expect("admit");
        on_start.recv_timeout(Duration::from_secs(10)).expect("starts");
        let on_disk = control::read_status(&control::job_dir(&root, id)).expect("status file");
        assert_eq!(on_disk.state, JobState::Running);
        // Another process drops a CANCEL marker; the owner polls it up.
        assert!(control::request_cancel(&root, id, CancelReason::User).expect("marker"));
        assert_eq!(sched.poll_control(), 1);
        let status = sched.wait(id).expect("known");
        assert_eq!(status.state, JobState::Cancelled);
        let on_disk = control::read_status(&control::job_dir(&root, id)).expect("final file");
        assert_eq!(on_disk.state, JobState::Cancelled);
        assert_eq!(on_disk.cancel_reason, Some(CancelReason::User));
        sched.wait_all();
        assert_eq!(sched.poll_control(), 0, "terminal jobs ignore markers");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn status_write_failures_never_kill_a_healthy_job() {
        use minoaner_dataflow::vfs::{FaultFs, FaultKind, FaultPlan};
        let root =
            std::env::temp_dir().join(format!("minoaner-jobs-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Every control-plane operation fails: the disk under the control
        // root is gone for the whole run.
        let faulty = FaultFs::new(FaultPlan::fail_from(0, FaultKind::Eio));
        let sched =
            JobScheduler::with_control_root_vfs(ResourceBudget::new(2, 0), &root, faulty.clone());
        let id = sched
            .submit(JobSpec::new("healthy"), |_| Ok(JobOutput::summary("12 matches")))
            .expect("admit despite dead control plane");
        let status = sched.wait(id).expect("known job");
        assert_eq!(status.state, JobState::Completed, "job survives: {status:?}");
        assert_eq!(status.summary.as_deref(), Some("12 matches"));
        sched.wait_all();
        // The degradation is observable, not silent.
        assert!(
            sched.status_write_failures() >= 2,
            "queued + running + completed transitions all failed, got {}",
            sched.status_write_failures()
        );
        assert!(!faulty.fired().is_empty(), "the fault plan actually fired");
        let _ = std::fs::remove_dir_all(&root);
    }
}
