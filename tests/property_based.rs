//! Property-based integration tests (proptest): invariants of the value
//! similarity metric (Proposition 1 of the paper), the blocking layer, the
//! pruned graph, the matcher, and unique mapping clustering — on randomly
//! generated KB pairs.

use minoaner::baselines::umc::unique_mapping_clustering;
use minoaner::blocking::graph::{build_blocking_graph, GraphConfig};
use minoaner::blocking::name::build_name_blocks;
use minoaner::blocking::token::build_token_blocks;
use minoaner::kb::stats::{value_sim, NameStats, RelationStats, TokenEf};
use minoaner::{EntityId, Executor, KbPairBuilder, Minoaner, Side, Term};
use proptest::prelude::*;

/// A random literal made of tokens from a tiny vocabulary, so overlaps are
/// common and the interesting code paths fire.
fn literal_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..25u8, 1..6).prop_map(|toks| {
        toks.iter().map(|t| format!("w{t}")).collect::<Vec<_>>().join(" ")
    })
}

/// A random clean-clean KB pair: per side, a handful of entities with
/// random literals and random intra-KB relation edges.
fn pair_strategy() -> impl Strategy<Value = (minoaner::KbPair, usize, usize)> {
    let side = || prop::collection::vec(prop::collection::vec(literal_strategy(), 1..4), 1..8);
    (side(), side(), prop::collection::vec((0..8usize, 0..8usize), 0..6)).prop_map(
        |(left, right, edges)| {
            let mut b = KbPairBuilder::new();
            for (side_tag, entities) in [(Side::Left, &left), (Side::Right, &right)] {
                let prefix = if side_tag == Side::Left { "l" } else { "r" };
                for (i, lits) in entities.iter().enumerate() {
                    let uri = format!("{prefix}:{i}");
                    let e = b.entity(side_tag, &uri);
                    for (j, lit) in lits.iter().enumerate() {
                        b.add_pair(side_tag, e, &format!("{prefix}:attr{j}"), Term::Literal(lit));
                    }
                }
                for &(from, to) in &edges {
                    let (from, to) = (from % entities.len(), to % entities.len());
                    if from != to {
                        let f = format!("{prefix}:{from}");
                        let t = format!("{prefix}:{to}");
                        let e = b.entity(side_tag, &f);
                        b.add_pair(side_tag, e, &format!("{prefix}:rel"), Term::Uri(&t));
                    }
                }
            }
            let (nl, nr) = (left.len(), right.len());
            (b.finish(), nl, nr)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: valueSim is non-negative and bounded by the
    /// self-similarity of either argument.
    #[test]
    fn value_sim_metric_properties((pair, nl, nr) in pair_strategy()) {
        let ef = TokenEf::compute(&pair);
        let self_weight = |side: Side, e: EntityId| -> f64 {
            pair.kb(side).tokens_of(e).iter().map(|&t| ef.token_weight(t)).sum()
        };
        for l in 0..nl.min(4) {
            for r in 0..nr.min(4) {
                let (le, re) = (EntityId(l as u32), EntityId(r as u32));
                let s = value_sim(&pair, &ef, le, re);
                prop_assert!(s >= 0.0);
                prop_assert!(s <= self_weight(Side::Left, le) + 1e-9,
                    "sim exceeds left self-similarity");
                prop_assert!(s <= self_weight(Side::Right, re) + 1e-9,
                    "sim exceeds right self-similarity");
            }
        }
    }

    /// Blocking completeness: any cross-KB pair sharing a token co-occurs
    /// in the (unpurged) token blocks.
    #[test]
    fn token_blocking_is_complete((pair, nl, nr) in pair_strategy()) {
        let blocks = build_token_blocks(&pair);
        for l in 0..nl {
            for r in 0..nr {
                let (le, re) = (EntityId(l as u32), EntityId(r as u32));
                let tl = pair.kb(Side::Left).tokens_of(le);
                let tr = pair.kb(Side::Right).tokens_of(re);
                let shares = tl.iter().any(|t| tr.contains(t));
                if shares {
                    let co_occurs = blocks.blocks.iter().any(|(_, b)| {
                        b.left.contains(&le) && b.right.contains(&re)
                    });
                    prop_assert!(co_occurs, "pair sharing a token must share a block");
                }
            }
        }
    }

    /// Graph pruning invariants: candidate lists are bounded by K, sorted
    /// by weight, and every β weight is positive.
    #[test]
    fn graph_pruning_invariants((pair, nl, nr) in pair_strategy(), k in 1..6usize) {
        let exec = Executor::new(1);
        let rels = RelationStats::compute(&pair);
        let names = NameStats::compute(&pair, 2);
        let tb = build_token_blocks(&pair);
        let nb = build_name_blocks(&pair, &names);
        let cfg = GraphConfig { top_k: k, n_relations: 2, ..GraphConfig::default() };
        let g = build_blocking_graph(&exec, &pair, &rels, &tb, &nb, &cfg);
        for (side, n) in [(Side::Left, nl), (Side::Right, nr)] {
            for i in 0..n {
                let e = EntityId(i as u32);
                for list in [g.value_candidates(side, e), g.neighbor_candidates(side, e)] {
                    prop_assert!(list.len() <= k, "candidate list exceeds K");
                    prop_assert!(list.windows(2).all(|w| w[0].1 >= w[1].1), "not sorted");
                    prop_assert!(list.iter().all(|&(_, w)| w > 0.0), "trivial edge kept");
                }
            }
        }
    }

    /// The matcher always yields a partial one-to-one mapping, and every
    /// match is connected in the pruned graph in both directions (R4).
    #[test]
    fn matcher_produces_reciprocal_partial_matching((pair, _nl, _nr) in pair_strategy()) {
        let exec = Executor::new(1);
        let m = Minoaner::new();
        let prepared = m.prepare(&exec, &pair);
        let outcome = m.match_prepared(&exec, &pair, &prepared, minoaner::RuleSet::FULL);
        let mut lefts: Vec<_> = outcome.matches.iter().map(|&(l, _)| l).collect();
        lefts.sort_unstable();
        let n = lefts.len();
        lefts.dedup();
        prop_assert_eq!(lefts.len(), n, "left endpoint reused");
        for &(l, r) in &outcome.matches {
            prop_assert!(prepared.graph.has_directed_edge(Side::Left, l, r));
            prop_assert!(prepared.graph.has_directed_edge(Side::Right, r, l));
        }
    }

    /// UMC invariants: output is a partial matching; scores of accepted
    /// pairs respect the threshold; accepting order never assigns a worse
    /// pair when a better one was available for the same entities.
    #[test]
    fn umc_invariants(
        pairs in prop::collection::vec((0..10u32, 0..10u32, 0.0..1.0f64), 0..40),
        threshold in 0.0..1.0f64,
    ) {
        let scored: Vec<(EntityId, EntityId, f64)> =
            pairs.iter().map(|&(l, r, s)| (EntityId(l), EntityId(r), s)).collect();
        let result = unique_mapping_clustering(scored.clone(), threshold);
        let mut seen_l = minoaner::DetHashSet::default();
        let mut seen_r = minoaner::DetHashSet::default();
        for &(l, r) in &result {
            prop_assert!(seen_l.insert(l), "left endpoint reused");
            prop_assert!(seen_r.insert(r), "right endpoint reused");
            let best = scored
                .iter()
                .filter(|&&(pl, pr, _)| pl == l && pr == r)
                .map(|&(_, _, s)| s)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(best >= threshold, "accepted pair below threshold");
        }
    }
}
