//! Out-of-core resolution: a run under a memory budget small enough to
//! force shuffle spills must produce *bit-identical* results to an
//! unconstrained in-memory run — same graph digest, same match set, same
//! rule counts — at every worker count. The budget changes where bytes
//! live, never what gets computed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use minoaner::dataflow::{
    MemoryBudget, RunTrace, SPILL_BYTES_COUNTER, SPILL_RECORDS_COUNTER, SPILL_RUNS_COUNTER,
};
use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::{Minoaner, Resolution, ResolveRequest};

fn dataset() -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(0.3))
}

/// A scratch directory unique per test without consulting any entropy
/// source (pid + a process-local counter).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("minoaner-out-of-core-{}-{tag}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_unconstrained(ds: &GeneratedDataset, workers: usize) -> (Resolution, RunTrace) {
    Minoaner::new()
        .run(ResolveRequest::pair(&ds.pair).trace().workers(workers))
        .expect("healthy run succeeds")
        .into_traced()
}

fn run_budgeted(
    ds: &GeneratedDataset,
    workers: usize,
    limit: u64,
    dir: &PathBuf,
) -> (Resolution, RunTrace) {
    Minoaner::new()
        .run(
            ResolveRequest::pair(&ds.pair)
                .trace()
                .workers(workers)
                .mem_budget(MemoryBudget::new(limit, dir)),
        )
        .expect("budgeted run succeeds")
        .into_traced()
}

fn assert_same_outcome(base: &Resolution, got: &Resolution, what: &str) {
    assert_eq!(base.graph_digest, got.graph_digest, "{what}: graph digest diverged");
    assert_eq!(base.matches, got.matches, "{what}: match set diverged");
    assert_eq!(base.rule_counts, got.rule_counts, "{what}: rule counts diverged");
}

#[test]
fn zero_budget_spills_and_stays_bit_identical_across_workers() {
    let ds = dataset();
    let (base, base_trace) = run_unconstrained(&ds, 2);
    assert_eq!(
        base_trace.counter(SPILL_RUNS_COUNTER),
        0,
        "unconstrained run must not spill"
    );
    assert!(!base.matches.is_empty(), "dataset must produce matches to compare");

    for workers in [1usize, 2, 8] {
        let dir = scratch_dir(&format!("zero-{workers}"));
        let (res, trace) = run_budgeted(&ds, workers, 0, &dir);

        assert!(
            trace.counter(SPILL_RUNS_COUNTER) > 0,
            "{workers} workers: a zero budget must force at least one spill"
        );
        assert!(trace.counter(SPILL_BYTES_COUNTER) > 0, "{workers} workers: bytes counter");
        assert!(trace.counter(SPILL_RECORDS_COUNTER) > 0, "{workers} workers: records counter");
        assert_same_outcome(&base, &res, &format!("{workers} workers, zero budget"));

        // Spill runs are scratch state: the shuffle cleans up after
        // itself once every partition is merged.
        let leftovers = std::fs::read_dir(&dir)
            .map(|entries| entries.count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "{workers} workers: spill dir must be empty after the run");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn partial_budget_mixes_memory_and_disk_runs_identically() {
    let ds = dataset();
    let (base, _) = run_unconstrained(&ds, 2);

    // A small-but-nonzero budget: some map tasks keep their runs in
    // memory, the rest spill — the merge must interleave both kinds.
    let dir = scratch_dir("partial");
    let (res, trace) = run_budgeted(&ds, 2, 16 * 1024, &dir);
    assert!(
        trace.counter(SPILL_RUNS_COUNTER) > 0,
        "16 KiB must be too small for the gamma shuffle of this dataset"
    );
    assert_same_outcome(&base, &res, "partial budget");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generous_budget_never_spills_but_is_still_identical() {
    let ds = dataset();
    let (base, _) = run_unconstrained(&ds, 2);

    let dir = scratch_dir("generous");
    let (res, trace) = run_budgeted(&ds, 2, u64::MAX, &dir);
    assert_eq!(trace.counter(SPILL_RUNS_COUNTER), 0, "unlimited budget must not spill");
    assert_same_outcome(&base, &res, "generous budget");
    assert!(!dir.join("nonexistent").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
