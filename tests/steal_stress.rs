//! Steal-schedule determinism stress: the blocking graph's
//! `weight_digest` must be bit-identical across worker counts {1, 2, 8}
//! and across many seeded steal schedules — stealing decides which
//! worker runs a partition, never what the partition computes.
//!
//! The seed count defaults to 8 so the workspace test run stays fast;
//! CI's `steal-stress` job sets `MINOANER_STEAL_SEEDS=50` (in release
//! mode) for the acceptance sweep.

use minoaner::blocking::graph::{build_blocking_graph, BlockingGraph, GraphConfig};
use minoaner::blocking::name::build_name_blocks;
use minoaner::blocking::purge::purge_blocks;
use minoaner::blocking::token::build_token_blocks;
use minoaner::blocking::{NameBlocks, TokenBlocks};
use minoaner::dataflow::StealSchedule;
use minoaner::datagen::{generate, profiles};
use minoaner::kb::stats::{NameStats, RelationStats};
use minoaner::kb::KbPair;
use minoaner::{Executor, Minoaner, Side};

struct GraphInputs {
    pair: KbPair,
    rels: RelationStats,
    token_blocks: TokenBlocks,
    name_blocks: NameBlocks,
    cfg: GraphConfig,
}

fn prepare_inputs() -> GraphInputs {
    let pair = generate(&profiles::restaurant().scaled(0.3)).pair;
    let config = *Minoaner::new().config();
    let rels = RelationStats::compute(&pair);
    let name_stats = NameStats::compute(&pair, config.name_attrs_k);
    let mut token_blocks = build_token_blocks(&pair);
    let total_entities = pair.kb(Side::Left).len() + pair.kb(Side::Right).len();
    purge_blocks(&mut token_blocks, total_entities);
    let name_blocks = build_name_blocks(&pair, &name_stats);
    let cfg = GraphConfig {
        top_k: config.top_k,
        n_relations: config.n_relations,
        ..GraphConfig::default()
    };
    GraphInputs { pair, rels, token_blocks, name_blocks, cfg }
}

fn build(inputs: &GraphInputs, exec: &Executor) -> BlockingGraph {
    build_blocking_graph(
        exec,
        &inputs.pair,
        &inputs.rels,
        &inputs.token_blocks,
        &inputs.name_blocks,
        &inputs.cfg,
    )
}

fn seed_count() -> u64 {
    std::env::var("MINOANER_STEAL_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(8).max(1)
}

#[test]
fn weight_digest_is_identical_across_workers_and_steal_seeds() {
    let inputs = prepare_inputs();
    let baseline = build(&inputs, &Executor::new(1)).weight_digest();

    for workers in [1usize, 2, 8] {
        for seed in 0..seed_count() {
            let mut exec = Executor::new(workers);
            exec.set_steal_schedule(StealSchedule::Seeded(seed));
            let digest = build(&inputs, &exec).weight_digest();
            assert_eq!(
                digest, baseline,
                "digest drifted at {workers} workers under Seeded({seed})"
            );
        }
    }
}

#[test]
fn weight_digest_is_identical_under_the_shared_claim_baseline() {
    let inputs = prepare_inputs();
    let baseline = build(&inputs, &Executor::new(1)).weight_digest();

    for workers in [1usize, 2, 8] {
        let mut exec = Executor::new(workers);
        exec.set_steal_schedule(StealSchedule::SharedClaim);
        let digest = build(&inputs, &exec).weight_digest();
        assert_eq!(digest, baseline, "shared-claim digest drifted at {workers} workers");
    }
}
