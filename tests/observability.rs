//! Integration tests for the observability layer: run traces captured
//! through [`Minoaner::try_resolve_traced`] must round-trip through JSON
//! exactly, must not perturb resolution results, and their domain
//! counters must mirror the in-memory [`minoaner::core::RuleCounts`].

use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::dataflow::RunTrace;
use minoaner::{Executor, Minoaner, RuleSet};

fn dataset() -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(0.4))
}

#[test]
fn trace_json_round_trip_is_exact() {
    let d = dataset();
    let mut exec = Executor::new(2);
    let (_, trace) =
        Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();
    trace.validate().expect("captured trace validates");
    let json = trace.to_json().expect("trace serializes");
    let back = RunTrace::from_json(&json).expect("trace JSON parses");
    assert_eq!(trace, back, "JSON round-trip must be lossless");
}

#[test]
fn observer_does_not_perturb_resolution() {
    let d = dataset();
    let mut exec = Executor::new(3);
    let m = Minoaner::new();

    let plain = m.try_resolve(&exec, &d.pair).unwrap();
    let (traced, _) = m.try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();

    let mut a = plain.matches.clone();
    let mut b = traced.matches.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "observer-on run must find the same matches");
    assert_eq!(plain.rule_counts, traced.rule_counts);

    // The observer was detached afterwards: a later plain run still works
    // and the executor reports no observer.
    assert!(!exec.observer().is_on(), "observer detached after traced run");
    let again = m.try_resolve(&exec, &d.pair).unwrap();
    assert_eq!(again.matches.len(), plain.matches.len());
}

#[test]
fn per_rule_trace_counters_mirror_rule_counts() {
    let d = dataset();
    let mut exec = Executor::new(2);
    let (res, trace) =
        Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();

    let c = res.rule_counts;
    assert_eq!(trace.counter("matching/r1_matches"), c.r1 as u64);
    assert_eq!(trace.counter("matching/r2_matches"), c.r2 as u64);
    assert_eq!(trace.counter("matching/r3_matches"), c.r3 as u64);
    assert_eq!(trace.counter("matching/r4_removed"), c.removed_by_r4 as u64);
    assert_eq!(trace.counter("matching/total_matches"), res.matches.len() as u64);
}

#[test]
fn trace_records_stage_io_and_blocking_counters() {
    let d = dataset();
    let mut exec = Executor::new(2);
    let (_, trace) =
        Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();

    assert!(trace.counter("blocking/token_blocks_built") > 0);
    assert!(trace.counter("blocking/token_block_comparisons") > 0);
    assert!(trace.counter("blocking/name_blocks_built") > 0);
    assert!(
        trace.counter("blocking/alpha_pairs") > 0,
        "restaurant world must yield α-edges: {:?}",
        trace.counters
    );

    assert!(!trace.stages.is_empty());
    assert!(
        trace.stages.iter().any(|s| s.io.items_in > 0 && s.io.items_out > 0),
        "at least one stage is annotated with item flow"
    );
    assert!(trace.total_stage_wall() <= trace.total_wall + trace.total_wall);
}

#[test]
fn gamma_pass_is_an_observed_stage_with_item_flow() {
    let d = dataset();
    let mut exec = Executor::new(2);
    let (_, trace) =
        Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();

    let gamma = trace
        .stages
        .iter()
        .find(|s| s.name == "graph/gamma")
        .expect("graph/gamma must appear in the stage log");
    assert!(
        gamma.io.items_in > 0 && gamma.io.items_out > 0,
        "γ stage must be annotated with β-edges in / γ-entries out: {:?}",
        gamma.io
    );
    assert!(
        trace.counter("blocking/beta_union_edges") > 0,
        "restaurant world must produce β union edges: {:?}",
        trace.counters
    );
    assert!(
        trace.counters.contains_key("blocking/gamma_entries"),
        "γ pass must report its entry count: {:?}",
        trace.counters
    );
}

#[test]
fn repeated_traced_runs_are_deterministic() {
    // The pre-rewrite γ pass iterated randomly-seeded hash maps, so f64
    // summation order — and thus candidate weights — varied per process.
    // The rewritten kernel must make repeated runs (and different worker
    // counts) agree exactly, which the blocking counters and match sets
    // witness end to end.
    let d = dataset();
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut exec = Executor::new(workers);
        let (res, trace) =
            Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).unwrap();
        let mut matches = res.matches.clone();
        matches.sort_unstable();
        runs.push((matches, trace.counters.clone()));
    }
    let (m0, c0) = &runs[0];
    for (m, c) in &runs[1..] {
        assert_eq!(m, m0, "match sets must be identical across worker counts");
        for key in ["blocking/beta_union_edges", "blocking/gamma_entries", "blocking/graph_directed_edges"]
        {
            assert_eq!(c.get(key), c0.get(key), "counter {key} drifted across runs");
        }
    }
}
