//! Integration tests for the observability layer: run traces captured
//! through a traced [`minoaner::ResolveRequest`] must round-trip through
//! JSON exactly, must not perturb resolution results, and their domain
//! counters must mirror the in-memory [`minoaner::core::RuleCounts`].
//! The deprecated `try_resolve*` wrappers are pinned here as equivalent
//! spellings of the same requests until they are removed.

use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::dataflow::RunTrace;
use minoaner::{Executor, KbPair, Minoaner, Resolution, ResolveRequest, RuleSet};

fn dataset() -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(0.4))
}

/// One traced run through the request API.
fn traced(pair: &KbPair, workers: usize) -> (Resolution, RunTrace) {
    Minoaner::new()
        .run(ResolveRequest::pair(pair).rules(RuleSet::FULL).trace().workers(workers))
        .expect("healthy run succeeds")
        .into_traced()
}

#[test]
fn trace_json_round_trip_is_exact() {
    let d = dataset();
    let (_, trace) = traced(&d.pair, 2);
    trace.validate().expect("captured trace validates");
    let json = trace.to_json().expect("trace serializes");
    let back = RunTrace::from_json(&json).expect("trace JSON parses");
    assert_eq!(trace, back, "JSON round-trip must be lossless");
}

#[test]
fn observer_does_not_perturb_resolution() {
    let d = dataset();
    let mut exec = Executor::new(3);
    let m = Minoaner::new();

    let plain = m
        .run_on(&mut exec, ResolveRequest::pair(&d.pair))
        .expect("plain run succeeds")
        .into_resolution();
    let (traced, _) = m
        .run_on(&mut exec, ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).trace())
        .expect("traced run succeeds")
        .into_traced();

    let mut a = plain.matches.clone();
    let mut b = traced.matches.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "observer-on run must find the same matches");
    assert_eq!(plain.rule_counts, traced.rule_counts);

    // The observer was detached afterwards: a later plain run still works
    // and the executor reports no observer.
    assert!(!exec.observer().is_on(), "observer detached after traced run");
    let again = m
        .run_on(&mut exec, ResolveRequest::pair(&d.pair))
        .expect("plain run succeeds")
        .into_resolution();
    assert_eq!(again.matches.len(), plain.matches.len());
}

#[test]
fn per_rule_trace_counters_mirror_rule_counts() {
    let d = dataset();
    let (res, trace) = traced(&d.pair, 2);

    let c = res.rule_counts;
    assert_eq!(trace.counter("matching/r1_matches"), c.r1 as u64);
    assert_eq!(trace.counter("matching/r2_matches"), c.r2 as u64);
    assert_eq!(trace.counter("matching/r3_matches"), c.r3 as u64);
    assert_eq!(trace.counter("matching/r4_removed"), c.removed_by_r4 as u64);
    assert_eq!(trace.counter("matching/total_matches"), res.matches.len() as u64);
}

#[test]
fn trace_records_stage_io_and_blocking_counters() {
    let d = dataset();
    let (_, trace) = traced(&d.pair, 2);

    assert!(trace.counter("blocking/token_blocks_built") > 0);
    assert!(trace.counter("blocking/token_block_comparisons") > 0);
    assert!(trace.counter("blocking/name_blocks_built") > 0);
    assert!(
        trace.counter("blocking/alpha_pairs") > 0,
        "restaurant world must yield α-edges: {:?}",
        trace.counters
    );

    assert!(!trace.stages.is_empty());
    assert!(
        trace.stages.iter().any(|s| s.io.items_in > 0 && s.io.items_out > 0),
        "at least one stage is annotated with item flow"
    );
    assert!(trace.total_stage_wall() <= trace.total_wall + trace.total_wall);
}

#[test]
fn gamma_pass_is_an_observed_stage_with_item_flow() {
    let d = dataset();
    let (_, trace) = traced(&d.pair, 2);

    let gamma = trace
        .stages
        .iter()
        .find(|s| s.name == "graph/gamma")
        .expect("graph/gamma must appear in the stage log");
    assert!(
        gamma.io.items_in > 0 && gamma.io.items_out > 0,
        "γ stage must be annotated with β-edges in / γ-entries out: {:?}",
        gamma.io
    );
    assert!(
        trace.counter("blocking/beta_union_edges") > 0,
        "restaurant world must produce β union edges: {:?}",
        trace.counters
    );
    assert!(
        trace.counters.contains_key("blocking/gamma_entries"),
        "γ pass must report its entry count: {:?}",
        trace.counters
    );
}

#[test]
fn repeated_traced_runs_are_deterministic() {
    // The pre-rewrite γ pass iterated randomly-seeded hash maps, so f64
    // summation order — and thus candidate weights — varied per process.
    // The rewritten kernel must make repeated runs (and different worker
    // counts) agree exactly, which the blocking counters and match sets
    // witness end to end.
    let d = dataset();
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let (res, trace) = traced(&d.pair, workers);
        let mut matches = res.matches.clone();
        matches.sort_unstable();
        runs.push((matches, trace.counters.clone()));
    }
    let (m0, c0) = &runs[0];
    for (m, c) in &runs[1..] {
        assert_eq!(m, m0, "match sets must be identical across worker counts");
        for key in ["blocking/beta_union_edges", "blocking/gamma_entries", "blocking/graph_directed_edges"]
        {
            assert_eq!(c.get(key), c0.get(key), "counter {key} drifted across runs");
        }
    }
}

/// The deprecated traced wrapper is the same computation as the traced
/// request: identical matches, rule counts, stage names and domain
/// counters (wall times are of course not compared).
#[test]
#[allow(deprecated)]
fn deprecated_traced_wrapper_matches_the_request_spelling() {
    let d = dataset();
    let mut exec = Executor::new(2);
    let (legacy_res, legacy_trace) =
        Minoaner::new().try_resolve_traced(&mut exec, &d.pair, RuleSet::FULL).expect("wrapper runs");
    let (req_res, req_trace) = traced(&d.pair, 2);

    assert_eq!(legacy_res.matches, req_res.matches);
    assert_eq!(legacy_res.rule_counts, req_res.rule_counts);
    assert_eq!(legacy_trace.counters, req_trace.counters);
    let names = |t: &RunTrace| t.stages.iter().map(|s| s.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&legacy_trace), names(&req_trace));
    assert_eq!(legacy_trace.workers, req_trace.workers);
}

/// The deprecated infallible and fallible plain wrappers agree with the
/// plain request spelling.
#[test]
#[allow(deprecated)]
fn deprecated_plain_wrappers_match_the_request_spelling() {
    let d = dataset();
    let exec = Executor::new(2);
    let m = Minoaner::new();

    let infallible = m.resolve(&exec, &d.pair);
    let fallible = m.try_resolve(&exec, &d.pair).expect("healthy run succeeds");
    let request = m
        .run(ResolveRequest::pair(&d.pair).workers(2))
        .expect("healthy run succeeds")
        .into_resolution();

    assert_eq!(infallible.matches, request.matches);
    assert_eq!(fallible.matches, request.matches);
    assert_eq!(infallible.rule_counts, request.rule_counts);
    assert_eq!(fallible.rule_counts, request.rule_counts);
}
