//! Cancellation-equivalence harness (proptest): cancelling a checkpointed
//! run at an arbitrary stage barrier must be indistinguishable from a
//! clean shutdown — the cancelled run leaves only complete, resumable
//! barriers behind, and resuming it yields output byte-identical to an
//! uninterrupted run.
//!
//! The harness mirrors `crash_recovery.rs`, swapping the SIGKILL-style
//! `MINOANER_CRASH_POINT` for the cooperative `MINOANER_CANCEL_POINT`
//! (same `after:<k>` grammar): instead of aborting the process, the
//! fault-injection hook latches the run's own `CancelToken` right after
//! barrier `k` commits — the worst-case timing for the cancellation
//! safety invariant — and the pipeline's next barrier poll surfaces it
//! as a structured `DataflowError::Cancelled`.
//!
//! Only compiled with the `fault-inject` feature; CI's jobs-stress job
//! runs `cargo test --features fault-inject --test cancel_equivalence`.

#![cfg(feature = "fault-inject")]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use minoaner::dataflow::{CancelReason, RunTrace};
use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::{
    CheckpointSpec, DataflowError, Executor, Minoaner, Resolution, ResolveRequest, RuleSet,
};
use proptest::prelude::*;

/// Number of pipeline barriers (`blocks`, `graph`, `matches`).
const BARRIERS: usize = 3;

/// `MINOANER_CANCEL_POINT` is process-global: every test that arms it
/// holds this lock so concurrent test threads never see each other's
/// armed cancellation point.
static CANCEL_POINT: Mutex<()> = Mutex::new(());

fn dataset(scale: f64) -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(scale))
}

/// A scratch directory that is unique per test without consulting any
/// entropy source (pid + a process-local counter).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "minoaner-cancel-equivalence-{}-{tag}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Renders the observable outcome of a run as a canonical text blob.
/// `ckpt/*` counters are excluded: they are the only counters allowed
/// to differ between an uninterrupted and a resumed run.
fn canonical(res: &Resolution, trace: &RunTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("digest {:016x}\n", res.graph_digest));
    let mut pairs: Vec<_> = res.matches.clone();
    pairs.sort_unstable();
    for (l, r) in pairs {
        out.push_str(&format!("match {} {}\n", l.index(), r.index()));
    }
    let c = &res.rule_counts;
    out.push_str(&format!(
        "rules {} {} {} {}\n",
        c.r1, c.r2, c.r3, c.removed_by_r4
    ));
    for (name, value) in &trace.counters {
        if !name.starts_with("ckpt/") {
            out.push_str(&format!("counter {name} {value}\n"));
        }
    }
    out
}

/// Runs the job-scoped checkpointed pipeline once over the scaled
/// restaurant dataset.
fn run(
    dir: &Path,
    workers: usize,
    scale: f64,
    resume: bool,
) -> Result<(Resolution, RunTrace), DataflowError> {
    let d = dataset(scale);
    let mut exec = Executor::new(workers);
    let mut spec = CheckpointSpec::new(dir);
    spec.resume = resume;
    Minoaner::new()
        .run_on(&mut exec, ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).checkpoint(&spec))
        .map(|o| o.into_traced())
}

/// The cancellation safety invariant on disk: every `stage-*` directory
/// under the checkpoint root carries a committed MANIFEST, and no
/// `.tmp-` staging leftovers exist — a cancelled run never tears a
/// barrier.
fn assert_only_complete_barriers(ckpt_dir: &Path) {
    for entry in std::fs::read_dir(ckpt_dir).expect("read checkpoint root") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_owned();
        assert!(!name.starts_with(".tmp-"), "cancelled run left a torn staging dir: {name}");
        if name.starts_with("stage-") {
            assert!(path.join("MANIFEST").is_file(), "stage dir {name} has no committed manifest");
        }
    }
}

/// The core exchange shared by the proptest property and the exhaustive
/// sweep: cancel at `barrier`, check the on-disk invariant, resume,
/// compare against the uninterrupted baseline. Failures panic, which
/// both the plain test runner and proptest's case runner report.
fn cancel_resume_roundtrip(barrier: usize, workers: usize, scale: f64, tag: &str) {
    let _guard = CANCEL_POINT.lock().unwrap_or_else(|p| p.into_inner());

    std::env::remove_var("MINOANER_CANCEL_POINT");
    let base_dir = scratch_dir(&format!("{tag}-base"));
    let (base_res, base_trace) =
        run(&base_dir, workers, scale, false).expect("uninterrupted run succeeds");
    let base = canonical(&base_res, &base_trace);

    let dir = scratch_dir(tag);
    std::env::set_var("MINOANER_CANCEL_POINT", format!("after:{barrier}"));
    let cancelled = run(&dir, workers, scale, false);
    std::env::remove_var("MINOANER_CANCEL_POINT");

    match cancelled {
        Err(e) => {
            // Cancellation observed at the next barrier poll, surfaced as
            // the structured error with the injected reason.
            assert!(
                barrier < BARRIERS - 1,
                "cancel after the final barrier cannot interrupt anything"
            );
            assert_eq!(e.cancel_reason(), Some(CancelReason::User), "wrong reason: {e}");
            assert_only_complete_barriers(&dir);

            // Resume: picks up exactly past the cancelled-at barrier and
            // reproduces the uninterrupted outcome byte-for-byte.
            let (res, trace) = run(&dir, workers, scale, true).expect("resumed run succeeds");
            assert_eq!(
                trace.counter("ckpt/resumed_from"),
                barrier as u64 + 1,
                "resume must restart right past the cancelled barrier"
            );
            assert_eq!(canonical(&res, &trace), base, "resumed run diverged from baseline");
        }
        Ok((res, trace)) => {
            // A cancel landing after the final barrier commits is a clean
            // shutdown of an already-complete run: nothing left to cut.
            assert_eq!(
                barrier,
                BARRIERS - 1,
                "run completed despite a cancel at interruptible barrier {barrier}"
            );
            assert_eq!(canonical(&res, &trace), base, "cancelled-at-end run diverged");
        }
    }
}

proptest! {
    // Each case is two-to-three full pipeline runs; keep the budget small
    // and rely on the exhaustive sweep below for barrier coverage.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cancellation at an arbitrary barrier, worker count and dataset
    /// scale is equivalent to a clean shutdown: only complete barriers
    /// remain, and resume reproduces the uninterrupted run exactly.
    #[test]
    fn cancel_at_arbitrary_stage_is_a_clean_shutdown(
        barrier in 0..BARRIERS,
        workers in prop::sample::select(vec![1usize, 2, 4]),
        scale in prop::sample::select(vec![0.15f64, 0.2, 0.25]),
    ) {
        cancel_resume_roundtrip(barrier, workers, scale, "prop");
    }
}

/// Deterministic complement to the property: every barrier is exercised
/// regardless of what the proptest sampler happens to draw.
#[test]
fn every_barrier_cancel_resumes_to_the_uninterrupted_outcome() {
    for barrier in 0..BARRIERS {
        cancel_resume_roundtrip(barrier, 2, 0.2, &format!("sweep-{barrier}"));
    }
}

/// The deprecated `try_resolve_job` wrapper and the checkpointed request
/// are the same computation: identical canonical blob (digest, matches,
/// rule counts, non-ckpt counters) on an uncancelled run. The wrapper's
/// extra `job:admit` admission poll is unobservable without a latched
/// token.
#[test]
#[allow(deprecated)]
fn deprecated_job_wrapper_matches_the_request_path() {
    let _guard = CANCEL_POINT.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("MINOANER_CANCEL_POINT");

    let d = dataset(0.2);
    let legacy_dir = scratch_dir("legacy-job");
    let mut exec = Executor::new(2);
    let spec = CheckpointSpec::new(&legacy_dir);
    let (legacy_res, legacy_trace) = Minoaner::new()
        .try_resolve_job(&mut exec, &d.pair, RuleSet::FULL, Some(&spec))
        .expect("legacy job run succeeds");

    let request_dir = scratch_dir("request-job");
    let (req_res, req_trace) = run(&request_dir, 2, 0.2, false).expect("request run succeeds");

    assert_eq!(
        canonical(&legacy_res, &legacy_trace),
        canonical(&req_res, &req_trace),
        "wrapper and request spellings diverged"
    );
}
