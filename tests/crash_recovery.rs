//! Crash-recovery harness: kill a checkpointed run at every stage
//! boundary, resume it, and assert the resumed run is indistinguishable
//! from an uninterrupted one.
//!
//! The harness is subprocess-driven. [`child_checkpointed_run`] is a
//! normal `#[test]` that does nothing unless `MINOANER_CRASH_CHILD=1`;
//! parent tests re-invoke the current test binary filtered to exactly
//! that test, arming a process-level crash point via
//! `MINOANER_CRASH_POINT` (`after:<k>` aborts right after barrier `k`
//! commits, `during:<stage>` aborts mid-write with parts staged but no
//! manifest committed). The child writes its result — graph digest,
//! match set, rule counts and domain counters — as a canonical text
//! blob the parent compares byte-for-byte.
//!
//! Only compiled with the `fault-inject` feature; CI's crash-recovery
//! job runs `cargo test --features fault-inject --test crash_recovery`.

#![cfg(feature = "fault-inject")]

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use minoaner::dataflow::RunTrace;
use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::{CheckpointSpec, Executor, Minoaner, Resolution, ResolveRequest, RuleSet};

/// Number of pipeline barriers (`blocks`, `graph`, `matches`).
const BARRIERS: usize = 3;

fn dataset() -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(0.3))
}

/// A scratch directory that is unique per test without consulting any
/// entropy source (pid + a process-local counter).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "minoaner-crash-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Renders the observable outcome of a run as a canonical text blob.
/// `ckpt/*` counters are excluded: they are the only counters allowed
/// to differ between an uninterrupted and a resumed run.
fn canonical(res: &Resolution, trace: &RunTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("digest {:016x}\n", res.graph_digest));
    let mut pairs: Vec<_> = res.matches.clone();
    pairs.sort_unstable();
    for (l, r) in pairs {
        out.push_str(&format!("match {} {}\n", l.index(), r.index()));
    }
    let c = &res.rule_counts;
    out.push_str(&format!(
        "rules {} {} {} {}\n",
        c.r1, c.r2, c.r3, c.removed_by_r4
    ));
    for (name, value) in &trace.counters {
        if !name.starts_with("ckpt/") {
            out.push_str(&format!("counter {name} {value}\n"));
        }
    }
    out
}

/// The child half of the harness. Inert unless spawned by a parent test
/// below with `MINOANER_CRASH_CHILD=1`.
#[test]
fn child_checkpointed_run() {
    if std::env::var("MINOANER_CRASH_CHILD").as_deref() != Ok("1") {
        return;
    }
    let ckpt_dir = std::env::var("MINOANER_CKPT_DIR").expect("MINOANER_CKPT_DIR set");
    let workers: usize = std::env::var("MINOANER_WORKERS")
        .expect("MINOANER_WORKERS set")
        .parse()
        .expect("MINOANER_WORKERS is a number");
    let result_path = std::env::var("MINOANER_RESULT_PATH").expect("MINOANER_RESULT_PATH set");

    let d = dataset();
    let mut exec = Executor::new(workers);
    let mut spec = CheckpointSpec::new(ckpt_dir);
    spec.resume = true; // resuming an empty dir is a fresh run
    let (res, trace) = Minoaner::new()
        .run_on(
            &mut exec,
            ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).checkpoint(&spec),
        )
        .expect("checkpointed run succeeds")
        .into_traced();

    // First line reports where the run resumed from (0 = fresh); the
    // rest is the canonical comparison blob.
    let body = format!(
        "resumed_from {}\n{}",
        trace.counter("ckpt/resumed_from"),
        canonical(&res, &trace)
    );
    std::fs::write(&result_path, body).expect("write child result");
}

struct ChildOutcome {
    status: std::process::ExitStatus,
    result: Option<String>,
}

/// Spawns the current test binary filtered to [`child_checkpointed_run`],
/// optionally arming a crash point. Returns the exit status and the
/// child's result blob (if it lived long enough to write one).
fn run_child(ckpt_dir: &Path, workers: usize, crash: Option<&str>, tag: &str) -> ChildOutcome {
    let result_path = scratch_dir(tag).join("result.txt");
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args([
        "child_checkpointed_run",
        "--exact",
        "--nocapture",
        "--test-threads",
        "1",
    ])
    .env("MINOANER_CRASH_CHILD", "1")
    .env("MINOANER_CKPT_DIR", ckpt_dir)
    .env("MINOANER_WORKERS", workers.to_string())
    .env("MINOANER_RESULT_PATH", &result_path);
    match crash {
        Some(point) => cmd.env("MINOANER_CRASH_POINT", point),
        None => cmd.env_remove("MINOANER_CRASH_POINT"),
    };
    let status = cmd.status().expect("spawn child test binary");
    let result = std::fs::read_to_string(&result_path).ok();
    ChildOutcome { status, result }
}

/// Splits a child result blob into (resumed_from, canonical body).
fn split_result(blob: &str) -> (u64, &str) {
    let (first, rest) = blob.split_once('\n').expect("result has a header line");
    let resumed_from = first
        .strip_prefix("resumed_from ")
        .expect("header is resumed_from")
        .parse()
        .expect("resumed_from is a number");
    (resumed_from, rest)
}

/// Runs an uninterrupted checkpointed child and returns its canonical body.
fn baseline(workers: usize, tag: &str) -> String {
    let dir = scratch_dir(tag);
    let out = run_child(&dir, workers, None, tag);
    assert!(out.status.success(), "baseline child run failed");
    let blob = out.result.expect("baseline wrote a result");
    let (resumed_from, body) = split_result(&blob);
    assert_eq!(resumed_from, 0, "baseline must not resume from anything");
    body.to_string()
}

/// The tentpole assertion: for every barrier `k` and several worker
/// counts, a run killed right after barrier `k` commits and then resumed
/// produces exactly the digest, match set, rule counts and domain
/// counters of an uninterrupted run — and really did resume from `k+1`.
#[test]
fn kill_after_every_barrier_then_resume_matches_uninterrupted() {
    for &workers in &[1usize, 2, 8] {
        let base = baseline(workers, &format!("base-w{workers}"));
        for barrier in 0..BARRIERS {
            let tag = format!("after-{barrier}-w{workers}");
            let dir = scratch_dir(&tag);

            let crashed = run_child(&dir, workers, Some(&format!("after:{barrier}")), &tag);
            assert!(
                !crashed.status.success(),
                "crash point after:{barrier} must abort the child"
            );
            assert!(
                crashed.result.is_none(),
                "aborted child must not have produced a result"
            );

            let resumed = run_child(&dir, workers, None, &format!("{tag}-resume"));
            assert!(resumed.status.success(), "resumed child run failed");
            let blob = resumed.result.expect("resumed child wrote a result");
            let (resumed_from, body) = split_result(&blob);
            assert_eq!(
                resumed_from,
                barrier as u64 + 1,
                "resume after crash at barrier {barrier} must restart past it"
            );
            assert_eq!(
                body, base,
                "resumed run (workers={workers}, crash after:{barrier}) diverged"
            );
        }
    }
}

/// Deterministic across worker counts: the canonical outcome must be
/// byte-identical whether the pipeline ran on 1, 2 or 8 workers.
#[test]
fn baseline_is_identical_across_worker_counts() {
    let w1 = baseline(1, "xw-1");
    let w2 = baseline(2, "xw-2");
    let w8 = baseline(8, "xw-8");
    assert_eq!(w1, w2, "workers 1 vs 2 diverged");
    assert_eq!(w1, w8, "workers 1 vs 8 diverged");
}

/// A crash in the middle of writing a checkpoint (parts staged, manifest
/// never committed) must leave the previous barrier recoverable: the
/// torn stage directory is ignored, not mistaken for a checkpoint.
#[test]
fn torn_write_resumes_from_previous_barrier() {
    let workers = 2;
    let base = baseline(workers, "torn-base");
    let dir = scratch_dir("torn");

    let crashed = run_child(&dir, workers, Some("during:graph"), "torn-crash");
    assert!(
        !crashed.status.success(),
        "during:graph crash point must abort the child"
    );

    let resumed = run_child(&dir, workers, None, "torn-resume");
    assert!(resumed.status.success(), "resumed child run failed");
    let blob = resumed.result.expect("resumed child wrote a result");
    let (resumed_from, body) = split_result(&blob);
    assert_eq!(
        resumed_from, 1,
        "torn graph write must fall back to the blocks barrier"
    );
    assert_eq!(body, base, "recovery from torn write diverged");
}

/// Runs a checkpointed resolution in-process and returns its outcome.
fn run_in_process(dir: &Path, workers: usize, resume: bool) -> (Resolution, RunTrace) {
    assert!(
        std::env::var("MINOANER_CRASH_POINT").is_err(),
        "in-process runs must not have a crash point armed"
    );
    let d = dataset();
    let mut exec = Executor::new(workers);
    let mut spec = CheckpointSpec::new(dir);
    spec.resume = resume;
    Minoaner::new()
        .run_on(
            &mut exec,
            ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).checkpoint(&spec),
        )
        .expect("checkpointed run succeeds")
        .into_traced()
}

/// Newest `stage-*` checkpoint directory under `root`.
fn newest_stage_dir(root: &Path) -> PathBuf {
    let mut stages: Vec<_> = std::fs::read_dir(root)
        .expect("read checkpoint root")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("stage-"))
        })
        .collect();
    stages.sort();
    stages.pop().expect("at least one committed stage")
}

/// Flips one bit in the first part file of the given stage directory.
fn corrupt_one_part(stage_dir: &Path) {
    let mut parts: Vec<_> = std::fs::read_dir(stage_dir)
        .expect("read stage dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-"))
        })
        .collect();
    parts.sort();
    let victim = parts.first().expect("stage has at least one part");
    let mut bytes = std::fs::read(victim).expect("read part");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(victim, bytes).expect("write corrupted part");
}

/// Bit-flip corruption in the newest checkpoint is detected by the
/// content hash; recovery falls back to an earlier good barrier (or a
/// fresh run) and still produces the uninterrupted outcome.
#[test]
fn bit_flip_corruption_is_detected_and_survived() {
    let workers = 2;
    let clean_dir = scratch_dir("bitflip-clean");
    let (clean_res, clean_trace) = run_in_process(&clean_dir, workers, false);
    let clean = canonical(&clean_res, &clean_trace);

    let dir = scratch_dir("bitflip");
    run_in_process(&dir, workers, false);
    let newest = newest_stage_dir(&dir);
    corrupt_one_part(&newest);

    let (res, trace) = run_in_process(&dir, workers, true);
    assert!(
        trace.counter("ckpt/rejected") >= 1,
        "corrupted checkpoint must be counted as rejected"
    );
    assert_eq!(
        canonical(&res, &trace),
        clean,
        "recovery after bit-flip corruption diverged"
    );
}

/// Truncating a part file (simulated torn disk write) is likewise
/// detected and survived.
#[test]
fn truncated_part_is_detected_and_survived() {
    let workers = 2;
    let clean_dir = scratch_dir("trunc-clean");
    let (clean_res, clean_trace) = run_in_process(&clean_dir, workers, false);
    let clean = canonical(&clean_res, &clean_trace);

    let dir = scratch_dir("trunc");
    run_in_process(&dir, workers, false);
    let newest = newest_stage_dir(&dir);
    let mut parts: Vec<_> = std::fs::read_dir(&newest)
        .expect("read stage dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-"))
        })
        .collect();
    parts.sort();
    let victim = parts.first().expect("stage has at least one part");
    let bytes = std::fs::read(victim).expect("read part");
    let keep = bytes.len() / 2;
    std::fs::write(victim, &bytes[..keep]).expect("truncate part");

    let (res, trace) = run_in_process(&dir, workers, true);
    assert!(
        trace.counter("ckpt/rejected") >= 1,
        "truncated checkpoint must be counted as rejected"
    );
    assert_eq!(
        canonical(&res, &trace),
        clean,
        "recovery after truncation diverged"
    );
}

/// A checkpointed run and a plain traced run agree on everything the
/// user can observe: checkpointing must never change the answer.
#[test]
fn checkpointed_run_matches_plain_run() {
    let workers = 2;
    let d = dataset();
    let mut exec = Executor::new(workers);
    let (plain_res, plain_trace) = Minoaner::new()
        .run_on(&mut exec, ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).trace())
        .expect("plain run succeeds")
        .into_traced();

    let dir = scratch_dir("plain-vs-ckpt");
    let (ckpt_res, ckpt_trace) = run_in_process(&dir, workers, false);

    assert_eq!(
        canonical(&plain_res, &plain_trace),
        canonical(&ckpt_res, &ckpt_trace),
        "checkpointing changed the observable outcome"
    );
}

/// Produces the CI artifact: crash a run, resume it, and persist the
/// recovered run's trace JSON under `target/` for upload.
#[test]
fn recovered_trace_artifact_is_written() {
    let workers = 2;
    let dir = scratch_dir("artifact");
    let crashed = run_child(&dir, workers, Some("after:1"), "artifact-crash");
    assert!(!crashed.status.success(), "crash point must abort the child");

    let (res, trace) = run_in_process(&dir, workers, true);
    assert_eq!(trace.counter("ckpt/resumed_from"), 2);
    assert!(!res.matches.is_empty(), "recovered run found no matches");

    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let path = PathBuf::from(target).join("crash_recovery_trace.json");
    let json = trace.to_json().expect("serialize trace artifact");
    std::fs::write(&path, json).expect("write trace artifact");
}
