//! Integration tests asserting the paper's *qualitative claims* — the
//! shape of the evaluation — on the generated benchmark analogues:
//!
//! * MinoanER is at least competitive everywhere and clearly best on the
//!   high-Variety pair (§6.1, Table 3);
//! * R1 is high-precision with moderate recall on every dataset (Table 4);
//! * neighbor evidence matters on nearly-similar data and is negligible on
//!   strongly-similar data (Table 4, "contribution of neighbors");
//! * θ < 0.5 hurts the nearly-similar datasets (Figure 5);
//! * the pipeline is robust to small parameter perturbations (Figure 5).

use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::eval::{run_system, Quality, SystemId};
use minoaner::{Executor, Minoaner, MinoanerConfig, ResolveRequest, RuleSet};

fn resolve_f1(exec: &Executor, d: &GeneratedDataset, cfg: MinoanerConfig, rules: RuleSet) -> Quality {
    let res = Minoaner::with_config(cfg)
        .run(ResolveRequest::pair(&d.pair).rules(rules).workers(exec.workers()))
        .expect("healthy run succeeds")
        .into_resolution();
    Quality::evaluate(&res.matches, &d.ground_truth)
}

#[test]
fn minoaner_wins_clearly_on_the_high_variety_pair() {
    // Table 3's headline: on BBCmusic-DBpedia MinoanER outperforms every
    // baseline by a wide margin.
    let d = generate(&profiles::bbc_dbpedia().scaled(0.4));
    let exec = Executor::default();
    let ours = run_system(&exec, &d, SystemId::Minoaner).quality.f1;
    for baseline in [SystemId::Bsl, SystemId::Paris, SystemId::Sigma, SystemId::Rimom] {
        let theirs = run_system(&exec, &d, baseline).quality.f1;
        assert!(
            ours > theirs,
            "MinoanER ({ours:.1}) must beat {} ({theirs:.1}) on the high-Variety pair",
            baseline.name()
        );
    }
}

#[test]
fn r1_is_high_precision_moderate_recall_everywhere() {
    // Table 4: R1 precision > 97% and recall > 66% on all four datasets;
    // small scales cost some recall, so the floors are slightly relaxed.
    let exec = Executor::new(2);
    for p in profiles::all_profiles() {
        // Half scale: small ground truths make precision noisy (one false
        // pair on a 27-match GT is already ~4%).
        let d = generate(&p.scaled(0.5));
        let q = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::R1_ONLY);
        assert!(q.precision > 88.0, "{}: R1 precision {}", p.name, q.precision);
        assert!(q.recall > 40.0, "{}: R1 recall {}", p.name, q.recall);
        assert!(q.recall < 99.0, "{}: R1 alone should not resolve everything", p.name);
    }
}

#[test]
fn neighbor_evidence_matters_exactly_where_the_paper_says() {
    let exec = Executor::default();
    // Nearly-similar datasets: dropping R3 costs noticeable recall.
    for profile in [profiles::bbc_dbpedia().scaled(0.4), profiles::yago_imdb().scaled(0.4)] {
        let d = generate(&profile);
        let full = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::FULL);
        let blind = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::NO_NEIGHBORS);
        assert!(
            full.recall > blind.recall + 2.0,
            "{}: neighbor evidence should add recall (full {} vs blind {})",
            profile.name,
            full.recall,
            blind.recall
        );
    }
    // Strongly-similar dataset: the effect is minor.
    let d = generate(&profiles::rexa_dblp().scaled(0.25));
    let full = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::FULL);
    let blind = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::NO_NEIGHBORS);
    assert!(
        (full.f1 - blind.f1).abs() < 8.0,
        "Rexa-DBLP: neighbor evidence plays a minor role (full {} vs blind {})",
        full.f1,
        blind.f1
    );
}

#[test]
fn low_theta_hurts_nearly_similar_datasets() {
    // Figure 5: θ < 0.5 under-weights value evidence and F1 drops on the
    // nearly-similar pairs.
    let exec = Executor::default();
    let d = generate(&profiles::yago_imdb().scaled(0.3));
    let at = |theta: f64| {
        let cfg = MinoanerConfig { theta, ..MinoanerConfig::default() };
        resolve_f1(&exec, &d, cfg, RuleSet::FULL).f1
    };
    let low = at(0.3);
    let default = at(0.6);
    assert!(
        default >= low,
        "θ=0.6 ({default:.1}) should be at least as good as θ=0.3 ({low:.1}) on YAGO-IMDb"
    );
}

#[test]
fn configuration_is_robust_to_small_perturbations() {
    // Figure 5's main finding: small changes in one parameter barely move
    // F1 (the four rules compensate for each other).
    let exec = Executor::default();
    let d = generate(&profiles::rexa_dblp().scaled(0.2));
    let base = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::FULL).f1;
    for cfg in [
        MinoanerConfig { top_k: 10, ..MinoanerConfig::default() },
        MinoanerConfig { top_k: 20, ..MinoanerConfig::default() },
        MinoanerConfig { n_relations: 2, ..MinoanerConfig::default() },
        MinoanerConfig { n_relations: 4, ..MinoanerConfig::default() },
        MinoanerConfig { theta: 0.5, ..MinoanerConfig::default() },
        MinoanerConfig { theta: 0.7, ..MinoanerConfig::default() },
    ] {
        let f1 = resolve_f1(&exec, &d, cfg, RuleSet::FULL).f1;
        assert!(
            (f1 - base).abs() < 6.0,
            "perturbation {cfg:?} moved F1 from {base:.1} to {f1:.1}"
        );
    }
}

#[test]
fn rules_compose_monotonically_into_the_full_workflow() {
    // The full workflow should not be worse than its strongest single rule
    // by more than a small margin on any dataset (rules cover for each
    // other, §6.1).
    let exec = Executor::default();
    for p in profiles::all_profiles() {
        let d = generate(&p.scaled(0.4));
        let full = resolve_f1(&exec, &d, MinoanerConfig::default(), RuleSet::FULL).f1;
        for rules in [RuleSet::R1_ONLY, RuleSet::R2_ONLY] {
            let single = resolve_f1(&exec, &d, MinoanerConfig::default(), rules).f1;
            assert!(
                full + 12.0 >= single,
                "{}: full workflow ({full:.1}) far below a single rule ({single:.1})",
                p.name
            );
        }
    }
}
