//! Multi-job chaos harness: N concurrent jobs through the
//! [`minoaner::jobs`] scheduler with seed-driven injected faults and
//! mid-run cancellations, asserting the orchestration layer's core
//! promises:
//!
//! * surviving jobs' canonical outcomes (weight digest, match set, rule
//!   counts, domain counters) are **bit-identical** to solo runs of the
//!   same dataset;
//! * injected task faults in one job never bleed into a sibling job;
//! * a job cancelled mid-run leaves only complete, resumable barriers
//!   and resumes to the uninterrupted outcome;
//! * no worker threads and no checkpoint directories leak.
//!
//! Tests serialize on a process-wide lock: `MINOANER_CANCEL_POINT` is a
//! process-global environment variable, and thread-leak accounting needs
//! a quiet process. Only compiled with the `fault-inject` feature; CI's
//! jobs-stress job runs `cargo test --features fault-inject --test
//! jobs_stress`.

#![cfg(feature = "fault-inject")]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use minoaner::dataflow::faultinject::FaultPlan;
use minoaner::dataflow::{CancelReason, RunTrace};
use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::jobs::{JobId, JobOutput, JobScheduler, JobSpec, JobState, Priority, ResourceBudget};
use minoaner::{
    CheckpointSpec, DataflowError, Executor, ExecutorConfig, FaultPolicy, KbPair, Minoaner,
    Resolution, ResolveRequest, RuleSet,
};

/// Serializes the tests in this binary: one arms the process-global
/// `MINOANER_CANCEL_POINT`, and the leak test counts process threads.
static SERIAL: Mutex<()> = Mutex::new(());

fn dataset(scale: f64) -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(scale))
}

/// A scratch directory that is unique per test without consulting any
/// entropy source (pid + a process-local counter).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("minoaner-jobs-stress-{}-{tag}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Renders the observable outcome of a run as a canonical text blob.
/// `ckpt/*` counters are excluded: they are the only counters allowed to
/// differ between a solo and an orchestrated (or resumed) run.
fn canonical(res: &Resolution, trace: &RunTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("digest {:016x}\n", res.graph_digest));
    let mut pairs: Vec<_> = res.matches.clone();
    pairs.sort_unstable();
    for (l, r) in pairs {
        out.push_str(&format!("match {} {}\n", l.index(), r.index()));
    }
    let c = &res.rule_counts;
    out.push_str(&format!("rules {} {} {} {}\n", c.r1, c.r2, c.r3, c.removed_by_r4));
    for (name, value) in &trace.counters {
        if !name.starts_with("ckpt/") {
            out.push_str(&format!("counter {name} {value}\n"));
        }
    }
    out
}

/// The checkpointed-job spelling on the request API: cancellation and
/// deadline ride on the executor, the checkpoint spec on the request.
fn resolve_job(
    exec: &mut Executor,
    pair: &KbPair,
    spec: &CheckpointSpec,
) -> Result<(Resolution, RunTrace), DataflowError> {
    Minoaner::new()
        .run_on(exec, ResolveRequest::pair(pair).rules(RuleSet::FULL).checkpoint(spec))
        .map(|o| o.into_traced())
}

/// A solo (un-orchestrated) checkpointed run: the reference every
/// scheduler-driven job of the same scale must match byte-for-byte.
fn solo_baseline(scale: f64, workers: usize, tag: &str) -> String {
    let dir = scratch_dir(tag);
    let d = dataset(scale);
    let mut exec = Executor::new(workers);
    let spec = CheckpointSpec::new(&dir);
    let (res, trace) =
        resolve_job(&mut exec, &d.pair, &spec).expect("solo baseline run succeeds");
    canonical(&res, &trace)
}

/// Shared per-job result sink: job ordinal → canonical blob.
type Results = Arc<Mutex<BTreeMap<u64, String>>>;

/// Work closure for a full-pipeline job: resolves the scaled restaurant
/// dataset on the job's own executor with per-job checkpoints under
/// `root/job-<id>/ckpt`, and records its canonical outcome in `results`.
fn pipeline_work(
    scale: f64,
    root: PathBuf,
    resume: bool,
    results: Results,
) -> impl FnOnce(&minoaner::jobs::JobContext) -> Result<JobOutput, DataflowError> {
    move |ctx| {
        let d = dataset(scale);
        let mut exec = ctx.executor();
        let mut spec = CheckpointSpec::for_job(&root, &ctx.id().to_string());
        spec.resume = resume;
        let (res, trace) = resolve_job(&mut exec, &d.pair, &spec)?;
        let blob = canonical(&res, &trace);
        results.lock().expect("results lock").insert(ctx.id().ordinal(), blob);
        Ok(JobOutput::summary(format!("{} matches", res.matches.len())).with_trace(trace))
    }
}

/// Work closure for a fault-riddled executor job: `TASKS` tasks, each
/// first attempt panicking per a seeded SplitMix64 schedule, retried by
/// the executor. Returns the stage's sum, which must equal the
/// fault-free sum exactly.
fn faulty_work(
    seed: u64,
) -> impl FnOnce(&minoaner::jobs::JobContext) -> Result<JobOutput, DataflowError> {
    const TASKS: usize = 24;
    move |ctx| {
        let plan = FaultPlan::new();
        let scheduled = plan.seed_first_attempt_panics("stress", TASKS, seed, 350);
        let exec = Executor::with_config(ExecutorConfig {
            workers: ctx.workers(),
            partitions: TASKS,
            fault_policy: FaultPolicy::retries(2),
        });
        let out = exec.try_run_stage("stress", TASKS, |i| {
            plan.before_task("stress", i);
            (i as u64) * 7 + 1
        })?;
        let sum: u64 = out.expect_complete().iter().sum();
        let fired = plan.fired_panics();
        Ok(JobOutput::summary(format!("sum {sum} scheduled {scheduled} fired {fired}")))
    }
}

/// The fault-free sum [`faulty_work`] must reproduce despite its faults.
fn fault_free_sum() -> u64 {
    (0..24u64).map(|i| i * 7 + 1).sum()
}

/// Asserts a job checkpoint dir holds only fully committed barriers: no
/// `.tmp-` staging leftovers, every `stage-*` dir carries a MANIFEST.
fn assert_only_complete_barriers(ckpt_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(ckpt_dir) else {
        return; // job never reached its first barrier — nothing to tear
    };
    for entry in entries {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_owned();
        assert!(!name.starts_with(".tmp-"), "torn staging dir leaked: {name}");
        if name.starts_with("stage-") {
            assert!(path.join("MANIFEST").is_file(), "stage dir {name} missing its manifest");
        }
    }
}

/// Linux thread count for the current process (0 where unavailable, in
/// which case the leak assertions degrade to vacuous).
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1).map(str::to_owned))
        })
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Waits (bounded) for transient worker threads to finish exiting after
/// their handles were joined, then returns the settled count.
fn settled_thread_count(at_most: usize) -> usize {
    for _ in 0..200 {
        let now = live_threads();
        if now <= at_most {
            return now;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    live_threads()
}

/// Tentpole assertion 1: jobs racing through the scheduler produce
/// outcomes bit-identical to solo runs of the same dataset.
#[test]
fn concurrent_jobs_match_solo_runs_bit_for_bit() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("MINOANER_CANCEL_POINT");

    let scales = [0.15f64, 0.2, 0.25];
    let baselines: Vec<String> = scales
        .iter()
        .enumerate()
        .map(|(i, &s)| solo_baseline(s, 2, &format!("solo-{i}")))
        .collect();

    let root = scratch_dir("concurrent-root");
    let results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let sched = JobScheduler::with_control_root(
        ResourceBudget::new(6, u64::MAX).with_max_running(3),
        &root,
    );

    // Two jobs per scale, mixed priorities, all racing under the budget.
    let mut expected: BTreeMap<JobId, usize> = BTreeMap::new();
    for round in 0..2 {
        for (i, &scale) in scales.iter().enumerate() {
            let prio = [Priority::Low, Priority::Normal, Priority::High][(round + i) % 3];
            let spec = JobSpec::new(format!("pipeline-{scale}-{round}"))
                .with_priority(prio)
                .with_workers(2);
            let id = sched
                .submit(spec, pipeline_work(scale, root.clone(), false, results.clone()))
                .expect("submission admitted");
            expected.insert(id, i);
        }
    }

    let final_statuses = sched.wait_all();
    assert_eq!(final_statuses.len(), expected.len());
    for status in &final_statuses {
        assert_eq!(status.state, JobState::Completed, "job {} failed: {:?}", status.id, status.error);
    }

    let results = results.lock().expect("results lock");
    for (id, scale_idx) in &expected {
        let blob = results.get(&id.ordinal()).expect("completed job recorded its outcome");
        assert_eq!(
            blob, &baselines[*scale_idx],
            "job {id} diverged from the solo run of its dataset"
        );
    }
}

/// Tentpole assertion 2: seed-driven injected faults are retried inside
/// the owning job and never corrupt it or its siblings.
#[test]
fn injected_faults_stay_contained_to_their_job() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("MINOANER_CANCEL_POINT");

    let baseline = solo_baseline(0.2, 2, "faulty-solo");
    let root = scratch_dir("faulty-root");
    let results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let sched =
        JobScheduler::with_control_root(ResourceBudget::new(6, u64::MAX).with_max_running(3), &root);

    let mut faulty_ids = Vec::new();
    for j in 0..4u64 {
        let id = sched
            .submit(JobSpec::new(format!("faulty-{j}")).with_workers(1), faulty_work(0xA5A5 + j))
            .expect("faulty job admitted");
        faulty_ids.push(id);
    }
    let pipeline_id = sched
        .submit(
            JobSpec::new("clean-pipeline").with_workers(2).with_priority(Priority::High),
            pipeline_work(0.2, root.clone(), false, results.clone()),
        )
        .expect("pipeline job admitted");

    sched.wait_all();

    let mut any_fired = false;
    for id in faulty_ids {
        let status = sched.status(id).expect("faulty job status");
        assert_eq!(status.state, JobState::Completed, "faulty job {id}: {:?}", status.error);
        let summary = status.summary.expect("faulty job summary");
        assert!(
            summary.starts_with(&format!("sum {} ", fault_free_sum())),
            "job {id} sum diverged despite retries: {summary}"
        );
        // The seeded schedule fired exactly as scheduled (scheduled == fired).
        let mut nums = summary
            .split_whitespace()
            .filter_map(|w| w.parse::<u64>().ok());
        let (_sum, scheduled, fired) =
            (nums.next(), nums.next().expect("scheduled"), nums.next().expect("fired"));
        assert_eq!(scheduled, fired, "job {id} retry accounting diverged from its schedule");
        any_fired |= fired > 0;
    }
    assert!(any_fired, "seeded fault campaign scheduled no faults — raise the rate");

    let results = results.lock().expect("results lock");
    let blob = results.get(&pipeline_id.ordinal()).expect("pipeline job completed");
    assert_eq!(blob, &baseline, "sibling faults bled into the clean pipeline job");
}

/// Tentpole assertion 3: a deterministic mid-run cancel (latched right
/// after barrier 0 commits) surfaces as a cancelled job whose checkpoint
/// dir holds only complete barriers, and a resume submitted afterwards
/// reproduces the uninterrupted outcome bit-for-bit.
#[test]
fn cancelled_job_resumes_cleanly() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());

    let baseline = solo_baseline(0.2, 2, "cancel-solo");
    let root = scratch_dir("cancel-root");
    let results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let sched =
        JobScheduler::with_control_root(ResourceBudget::new(4, u64::MAX).with_max_running(1), &root);

    std::env::set_var("MINOANER_CANCEL_POINT", "after:0");
    let victim = sched
        .submit(
            JobSpec::new("doomed").with_workers(2),
            pipeline_work(0.2, root.clone(), false, results.clone()),
        )
        .expect("victim admitted");
    let status = sched.wait(victim).expect("victim reaches a terminal state");
    std::env::remove_var("MINOANER_CANCEL_POINT");

    assert_eq!(status.state, JobState::Cancelled, "armed cancel point must cancel the job");
    assert_eq!(status.cancel_reason, Some(CancelReason::User));
    assert!(
        results.lock().expect("results lock").is_empty(),
        "a cancelled job must not have recorded a completed outcome"
    );

    let ckpt = CheckpointSpec::for_job(&root, &victim.to_string());
    assert_only_complete_barriers(ckpt.dir());
    let persisted =
        minoaner::jobs::control::read_status(&minoaner::jobs::control::job_dir(&root, victim))
            .expect("cancelled status persisted to the control plane");
    assert_eq!(persisted.state, JobState::Cancelled);

    // Resume through the scheduler: a fresh job pointed at the victim's
    // checkpoint dir picks up past barrier 0 and matches the solo run.
    let resumed_results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let results_clone = resumed_results.clone();
    let ckpt_dir = ckpt.dir().to_path_buf();
    let resumed = sched
        .submit(JobSpec::new("resume-of-doomed").with_workers(2), move |ctx| {
            let d = dataset(0.2);
            let mut exec = ctx.executor();
            let mut spec = CheckpointSpec::new(&ckpt_dir);
            spec.resume = true;
            let (res, trace) = resolve_job(&mut exec, &d.pair, &spec)?;
            assert_eq!(
                trace.counter("ckpt/resumed_from"),
                1,
                "resume must restart right past the cancelled barrier"
            );
            let blob = canonical(&res, &trace);
            results_clone.lock().expect("results lock").insert(ctx.id().ordinal(), blob);
            Ok(JobOutput::summary(format!("{} matches", res.matches.len())))
        })
        .expect("resume job admitted");
    let status = sched.wait(resumed).expect("resume reaches a terminal state");
    assert_eq!(status.state, JobState::Completed, "resume failed: {:?}", status.error);

    let resumed_results = resumed_results.lock().expect("results lock");
    let blob = resumed_results.get(&resumed.ordinal()).expect("resume recorded its outcome");
    assert_eq!(blob, &baseline, "resumed job diverged from the uninterrupted solo run");
}

/// The child half of the process-crash harness below. Inert unless
/// spawned with `MINOANER_JOBS_CRASH_CHILD=1`: runs one checkpointed
/// pipeline job through the scheduler while the parent has armed
/// `MINOANER_CRASH_POINT`, which aborts this whole process right after
/// the chosen barrier commits.
#[test]
fn child_scheduler_run() {
    if std::env::var("MINOANER_JOBS_CRASH_CHILD").as_deref() != Ok("1") {
        return;
    }
    let root = PathBuf::from(std::env::var("MINOANER_JOBS_ROOT").expect("MINOANER_JOBS_ROOT set"));
    let results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let sched =
        JobScheduler::with_control_root(ResourceBudget::new(4, u64::MAX).with_max_running(1), &root);
    let id = sched
        .submit(
            JobSpec::new("crash-victim").with_workers(2),
            pipeline_work(0.2, root.clone(), false, results),
        )
        .expect("crash victim admitted");
    // Never returns when the crash point is armed: the abort happens on
    // the job's worker thread and takes the process with it.
    sched.wait(id);
}

/// Tentpole assertion: a hard process crash (not a cooperative cancel)
/// mid-job — the `MINOANER_CRASH_POINT` abort from the crash-recovery
/// harness, fired inside a scheduler-owned job — still leaves the
/// per-job checkpoint dir fully committed, and resuming over it lands
/// on the uninterrupted outcome.
#[test]
fn process_crash_mid_job_leaves_resumable_job_dir() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("MINOANER_CANCEL_POINT");

    let baseline = solo_baseline(0.2, 2, "crash-solo");
    let root = scratch_dir("crash-root");

    let exe = std::env::current_exe().expect("current_exe");
    let status = Command::new(exe)
        .args(["child_scheduler_run", "--exact", "--nocapture", "--test-threads", "1"])
        .env("MINOANER_JOBS_CRASH_CHILD", "1")
        .env("MINOANER_JOBS_ROOT", &root)
        .env("MINOANER_CRASH_POINT", "after:1")
        .env_remove("MINOANER_CANCEL_POINT")
        .status()
        .expect("spawn child test binary");
    assert!(!status.success(), "armed crash point must abort the child process");

    // The first job a fresh scheduler mints is ordinal 0; its dir must
    // hold exactly barriers 0 and 1, both fully committed.
    let job_dirs: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("read control root")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("job-")))
        .collect();
    assert_eq!(job_dirs.len(), 1, "child submitted exactly one job");
    let ckpt_dir = job_dirs[0].join("ckpt");
    assert_only_complete_barriers(&ckpt_dir);

    let d = dataset(0.2);
    let mut exec = Executor::new(2);
    let mut spec = CheckpointSpec::new(&ckpt_dir);
    spec.resume = true;
    let (res, trace) =
        resolve_job(&mut exec, &d.pair, &spec).expect("resume over the crashed job dir succeeds");
    assert_eq!(trace.counter("ckpt/resumed_from"), 2, "resume must pick up past barrier 1");
    assert_eq!(
        canonical(&res, &trace),
        baseline,
        "crashed-then-resumed job diverged from the uninterrupted solo run"
    );
}

/// Tentpole assertion 4: a full chaos mix — pipelines, fault-riddled
/// jobs, racing user cancels, a queued cancel — converges with every
/// survivor correct, every cancelled job resumable, and neither worker
/// threads nor checkpoint directories leaked.
#[test]
fn chaos_mix_converges_without_leaks() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("MINOANER_CANCEL_POINT");

    let baseline = solo_baseline(0.2, 2, "chaos-solo");
    let threads_before = live_threads();

    let root = scratch_dir("chaos-root");
    let results: Results = Arc::new(Mutex::new(BTreeMap::new()));
    let sched =
        JobScheduler::with_control_root(ResourceBudget::new(4, u64::MAX).with_max_running(2), &root);

    let mut submitted = Vec::new();
    let mut pipeline_ids = Vec::new();
    for j in 0..3 {
        let id = sched
            .submit(
                JobSpec::new(format!("chaos-pipeline-{j}")).with_workers(2),
                pipeline_work(0.2, root.clone(), false, results.clone()),
            )
            .expect("pipeline admitted");
        submitted.push(id);
        pipeline_ids.push(id);
    }
    for j in 0..2u64 {
        let id = sched
            .submit(JobSpec::new(format!("chaos-faulty-{j}")).with_workers(1), faulty_work(77 + j))
            .expect("faulty admitted");
        submitted.push(id);
    }
    // A job cancelled while (most likely) still queued: max_running=2
    // and five submissions ahead of it keep the queue busy.
    let queued_victim = sched
        .submit(
            JobSpec::new("chaos-queued-victim").with_workers(2).with_priority(Priority::Low),
            pipeline_work(0.2, root.clone(), false, results.clone()),
        )
        .expect("queued victim admitted");
    submitted.push(queued_victim);
    sched.cancel(queued_victim, CancelReason::User);

    // Racing cancel against a (possibly already finished) pipeline job:
    // both outcomes are legal; a cancelled one must be resumable.
    let race_victim = pipeline_ids[2];
    sched.cancel(race_victim, CancelReason::User);

    let final_statuses = sched.wait_all();
    assert_eq!(final_statuses.len(), submitted.len());

    let results_now: BTreeMap<u64, String> = results.lock().expect("results lock").clone();
    for status in &final_statuses {
        match status.state {
            JobState::Completed => {
                if pipeline_ids.contains(&status.id) || status.id == queued_victim {
                    let blob =
                        results_now.get(&status.id.ordinal()).expect("completed pipeline recorded");
                    assert_eq!(blob, &baseline, "job {} diverged under chaos", status.id);
                }
            }
            JobState::Cancelled => {
                assert_eq!(status.cancel_reason, Some(CancelReason::User));
                // Whatever barriers it reached are complete and resumable:
                // a direct resume must land on the uninterrupted outcome.
                let ckpt = CheckpointSpec::for_job(&root, &status.id.to_string());
                assert_only_complete_barriers(ckpt.dir());
                let d = dataset(0.2);
                let mut exec = Executor::new(2);
                let mut spec = CheckpointSpec::new(ckpt.dir());
                spec.resume = true;
                let (res, trace) = resolve_job(&mut exec, &d.pair, &spec)
                    .expect("resume of cancelled chaos job succeeds");
                assert_eq!(
                    canonical(&res, &trace),
                    baseline,
                    "cancelled job {} did not resume to the solo outcome",
                    status.id
                );
            }
            other => panic!("job {} ended in unexpected state {other}", status.id),
        }
    }

    // No checkpoint-dir leaks: the control root holds exactly one
    // `job-<id>` dir per submission (plus nothing else), and no torn
    // barrier staging dirs anywhere beneath it.
    let mut top: Vec<String> = std::fs::read_dir(&root)
        .expect("read control root")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    top.sort();
    let mut want: Vec<String> = submitted.iter().map(|id| format!("job-{id}")).collect();
    want.sort();
    assert_eq!(top, want, "control root grew stray directories");
    for id in &submitted {
        assert_only_complete_barriers(CheckpointSpec::for_job(&root, &id.to_string()).dir());
    }

    // No worker leaks: job threads are joined by wait_all, executor
    // workers by their executors' drops; the process settles back to its
    // pre-scheduler thread count.
    drop(sched);
    let threads_after = settled_thread_count(threads_before);
    assert!(
        threads_after <= threads_before,
        "worker threads leaked: {threads_before} before, {threads_after} after"
    );
}
