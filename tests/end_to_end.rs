//! Cross-crate integration tests: the full MinoanER pipeline over the
//! generated benchmark analogues, format round-trips, and determinism.

use minoaner::datagen::{generate, profiles};
use minoaner::eval::Quality;
use minoaner::kb::parser::{load_ntriples, write_ntriples};
use minoaner::{KbPair, KbPairBuilder, Minoaner, Resolution, ResolveRequest, Side};

/// Resolves on the engine-default worker count.
fn resolve(pair: &KbPair) -> Resolution {
    Minoaner::new()
        .run(ResolveRequest::pair(pair))
        .expect("healthy run succeeds")
        .into_resolution()
}

/// Resolves with an explicit worker count.
fn resolve_with(pair: &KbPair, workers: usize) -> Resolution {
    Minoaner::new()
        .run(ResolveRequest::pair(pair).workers(workers))
        .expect("healthy run succeeds")
        .into_resolution()
}

/// Quality floors at test scale — lower than the full-scale numbers (the
/// generator's rates bite harder on small populations) but high enough to
/// catch real regressions.
#[test]
fn pipeline_quality_floors_per_profile() {
    let floors = [("Restaurant", 0.6, 85.0), ("Rexa-DBLP", 0.15, 85.0), ("BBCmusic-DBpedia", 0.2, 80.0), ("YAGO-IMDb", 0.2, 80.0)];
    for (profile, scale, floor) in floors {
        let p = profiles::all_profiles().into_iter().find(|p| p.name == profile).expect("profile");
        let d = generate(&p.scaled(scale));
        let res = resolve(&d.pair);
        let q = Quality::evaluate(&res.matches, &d.ground_truth);
        assert!(q.f1 >= floor, "{profile} @ {scale}: F1 {} below floor {floor}", q.f1);
    }
}

#[test]
fn resolution_is_deterministic_across_runs_and_workers() {
    let d = generate(&profiles::yago_imdb().scaled(0.15));
    let resolve = |workers| {
        let mut m = resolve_with(&d.pair, workers).matches;
        m.sort_unstable();
        m
    };
    let once = resolve(1);
    assert_eq!(once, resolve(1), "same worker count, same result");
    assert_eq!(once, resolve(4), "worker count must not change matches");
    assert_eq!(once, resolve(7), "odd worker counts too");
}

#[test]
fn ntriples_round_trip_preserves_resolution() {
    // Serialize a generated dataset to N-Triples, parse it back, and check
    // the pipeline finds the same number of matches on the reloaded pair.
    let d = generate(&profiles::restaurant().scaled(0.4));
    let left_nt = write_ntriples(&d.pair, Side::Left);
    let right_nt = write_ntriples(&d.pair, Side::Right);

    let mut b = KbPairBuilder::new();
    load_ntriples(&mut b, Side::Left, &left_nt).expect("left parses");
    load_ntriples(&mut b, Side::Right, &right_nt).expect("right parses");
    let reloaded = b.finish();

    assert_eq!(reloaded.kb(Side::Left).len(), d.pair.kb(Side::Left).len());
    assert_eq!(reloaded.kb(Side::Right).len(), d.pair.kb(Side::Right).len());
    assert_eq!(reloaded.kb(Side::Left).triple_count(), d.pair.kb(Side::Left).triple_count());

    let original = resolve_with(&d.pair, 2);
    let round_tripped = resolve_with(&reloaded, 2);
    assert_eq!(
        original.matches.len(),
        round_tripped.matches.len(),
        "resolution must survive the N-Triples round trip"
    );
    // And the matched URI pairs are identical.
    let to_uris = |pair: &minoaner::KbPair, matches: &[(minoaner::EntityId, minoaner::EntityId)]| {
        let mut v: Vec<(String, String)> = matches
            .iter()
            .map(|&(l, r)| (pair.uri_of(Side::Left, l).to_owned(), pair.uri_of(Side::Right, r).to_owned()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(to_uris(&d.pair, &original.matches), to_uris(&reloaded, &round_tripped.matches));
}

#[test]
fn matching_is_one_to_one_on_every_profile() {
    for p in profiles::all_profiles() {
        let d = generate(&p.scaled(0.15));
        let res = resolve_with(&d.pair, 2);
        let mut lefts: Vec<_> = res.matches.iter().map(|&(l, _)| l).collect();
        let mut rights: Vec<_> = res.matches.iter().map(|&(_, r)| r).collect();
        lefts.sort_unstable();
        rights.sort_unstable();
        let (nl, nr) = (lefts.len(), rights.len());
        lefts.dedup();
        rights.dedup();
        assert_eq!(nl, lefts.len(), "{}: duplicate left endpoint", p.name);
        assert_eq!(nr, rights.len(), "{}: duplicate right endpoint", p.name);
    }
}

#[test]
fn stage_log_covers_blocking_and_matching() {
    let d = generate(&profiles::restaurant().scaled(0.3));
    let res = resolve_with(&d.pair, 2);
    let names: Vec<String> =
        res.timings.stages.stages().iter().map(|s| s.name.clone()).collect();
    for expected in
        ["token-blocking", "graph/index", "graph/beta", "graph/gamma", "matching/r1", "matching/r3"]
    {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "stage log missing {expected}: {names:?}"
        );
    }
    assert!(res.timings.total >= res.timings.matching);
}
