//! Chaos VFS harness: seeded filesystem fault injection for every
//! durable path, with graceful-degradation policies (DESIGN.md §18).
//!
//! The sweep is exhaustive by construction: a fault-free *probe* run
//! through a recording [`FaultFs`] enumerates every filesystem operation
//! a checkpointed (or spilling) resolution performs, then the harness
//! re-runs the pipeline once per operation index `k` × fault kind ×
//! worker count, injecting exactly that fault. Every faulted run must
//! end in one of two defensible states:
//!
//! * a **typed error** ([`DataflowError::Checkpoint`] or
//!   [`DataflowError::DiskFull`]) with no `.tmp-` scratch leaked, or
//! * a **recovered/degraded success** whose graph digest, match set and
//!   rule counts are bit-identical to the fault-free reference.
//!
//! Never a silently wrong answer. The witness artifact test persists the
//! recorded op traces under `target/chaos-vfs/` for the CI job to upload.
//!
//! Only compiled with the `fault-inject` feature; CI's chaos-vfs job
//! runs `cargo test --release --features fault-inject --test chaos_vfs`.

#![cfg(feature = "fault-inject")]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use minoaner::dataflow::vfs::{FaultFs, FaultKind, FaultPlan, VfsRef};
use minoaner::dataflow::MemoryBudget;
use minoaner::datagen::{generate, profiles, GeneratedDataset};
use minoaner::{CheckpointSpec, DataflowError, Minoaner, Resolution, ResolveRequest, RuleSet};

fn dataset() -> GeneratedDataset {
    generate(&profiles::restaurant().scaled(0.1))
}

/// A scratch directory that is unique per test without consulting any
/// entropy source (pid + a process-local counter).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "minoaner-chaos-vfs-{}-{tag}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Renders the observable outcome of a run as a canonical text blob
/// (digest, sorted match set, rule counts — the things a user consumes).
fn canonical(res: &Resolution) -> String {
    let mut out = String::new();
    out.push_str(&format!("digest {:016x}\n", res.graph_digest));
    let mut pairs: Vec<_> = res.matches.clone();
    pairs.sort_unstable();
    for (l, r) in pairs {
        out.push_str(&format!("match {} {}\n", l.index(), r.index()));
    }
    let c = &res.rule_counts;
    out.push_str(&format!("rules {} {} {} {}\n", c.r1, c.r2, c.r3, c.removed_by_r4));
    out
}

/// Every path under `root` whose file name starts with `.tmp-` — the
/// staging prefix every durable writer in the workspace uses. After any
/// run, faulted or not, there must be none: commit renames them away and
/// failure paths sweep them.
fn tmp_leaks(root: &Path) -> Vec<PathBuf> {
    let mut leaks = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"))
            {
                leaks.push(path.clone());
            }
            if path.is_dir() {
                stack.push(path);
            }
        }
    }
    leaks
}

/// Immediate children of `dir` (empty if the directory is gone).
fn dir_entries(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .map(|it| it.flatten().map(|e| e.path()).collect())
        .unwrap_or_default()
}

/// One checkpointed run of the pipeline through `vfs`.
fn run_ckpt(
    pair: &minoaner::KbPair,
    dir: &Path,
    workers: usize,
    vfs: VfsRef,
    degrade: bool,
    resume: bool,
) -> Result<(Resolution, minoaner::dataflow::RunTrace), DataflowError> {
    let mut spec = CheckpointSpec::new(dir).with_vfs(vfs);
    spec.resume = resume;
    if degrade {
        spec = spec.degrade_on_error();
    }
    let req = ResolveRequest::pair(pair).rules(RuleSet::FULL).checkpoint(&spec).workers(workers);
    Ok(Minoaner::new().run(req)?.into_traced())
}

/// Fault-free reference: the canonical outcome plus the durable op count
/// of a checkpointed run at `workers`.
fn reference(pair: &minoaner::KbPair, workers: usize, tag: &str) -> (String, u64) {
    let dir = scratch_dir(tag);
    let probe = FaultFs::new(FaultPlan::none());
    let (res, _) = run_ckpt(pair, &dir, workers, probe.clone(), false, false)
        .expect("fault-free probe run succeeds");
    assert!(tmp_leaks(&dir).is_empty(), "probe run leaked staging files");
    (canonical(&res), probe.op_count())
}

fn is_typed_io_failure(e: &DataflowError) -> bool {
    matches!(e, DataflowError::Checkpoint(_) | DataflowError::DiskFull { .. })
}

/// The tentpole sweep: inject every fault kind at every durable op index
/// under the fail-fast policy. Full kind coverage at 2 workers, ENOSPC
/// at 1 and 8 workers. Faulted runs either surface a typed error and
/// leak nothing, or succeed bit-identically (a fault on a best-effort
/// op — e.g. stale-staging cleanup — is tolerated by design).
#[test]
fn checkpoint_fault_at_every_op_is_typed_or_tolerated() {
    let d = dataset();
    for &workers in &[1usize, 2, 8] {
        let kinds: &[FaultKind] =
            if workers == 2 { &FaultKind::ALL } else { &[FaultKind::Enospc] };
        let (base, n_ops) = reference(&d.pair, workers, &format!("ref-w{workers}"));
        assert!(n_ops >= 10, "a checkpointed run must perform many durable ops, saw {n_ops}");
        for k in 0..n_ops {
            for &kind in kinds {
                let tag = format!("sweep-w{workers}-k{k}-{}", kind.as_str());
                let dir = scratch_dir(&tag);
                let faulty = FaultFs::new(FaultPlan::fail_op(k, kind));
                let outcome = run_ckpt(&d.pair, &dir, workers, faulty.clone(), false, false);
                assert_eq!(
                    faulty.fired().len(),
                    1,
                    "fault at op {k} ({kind:?}, workers {workers}) must fire exactly once"
                );
                match outcome {
                    Ok((res, _)) => assert_eq!(
                        canonical(&res),
                        base,
                        "tolerated fault at op {k} ({kind:?}, workers {workers}) changed the output"
                    ),
                    Err(e) => assert!(
                        is_typed_io_failure(&e),
                        "fault at op {k} ({kind:?}, workers {workers}) surfaced untyped: {e}"
                    ),
                }
                let leaks = tmp_leaks(&dir);
                assert!(
                    leaks.is_empty(),
                    "fault at op {k} ({kind:?}, workers {workers}) leaked staging files: {leaks:?}"
                );
            }
        }
    }
}

/// After any mid-run checkpoint fault, a healthy `--resume` run over the
/// same directory recovers to the bit-identical reference: whatever the
/// torn run left behind (committed prefix, swept staging) is either a
/// valid resume point or ignored — never mistaken for good state.
#[test]
fn resume_after_fault_recovers_bit_identical_output() {
    let d = dataset();
    let workers = 2;
    let (base, n_ops) = reference(&d.pair, workers, "resume-ref");
    // Early, middle and late fault points cover open, first-barrier and
    // last-barrier failure states without re-running the whole sweep.
    for &k in &[0, n_ops / 2, n_ops - 1] {
        for &kind in &FaultKind::ALL {
            let tag = format!("resume-k{k}-{}", kind.as_str());
            let dir = scratch_dir(&tag);
            let faulty = FaultFs::new(FaultPlan::fail_op(k, kind));
            let _ = run_ckpt(&d.pair, &dir, workers, faulty, false, false);
            let healthy = FaultFs::new(FaultPlan::none());
            let (res, _) = run_ckpt(&d.pair, &dir, workers, healthy, false, true)
                .unwrap_or_else(|e| {
                    panic!("healthy resume after fault at op {k} ({kind:?}) failed: {e}")
                });
            assert_eq!(
                canonical(&res),
                base,
                "resume after fault at op {k} ({kind:?}) diverged from reference"
            );
            assert!(tmp_leaks(&dir).is_empty(), "resume left staging files behind");
        }
    }
}

/// The graceful-degradation policy: with `DegradeOnCkptError::Continue`,
/// a checkpoint fault at ANY durable op never fails the run — the store
/// latches off, `ckpt/degraded` counts the event, and the output stays
/// bit-identical (merely not resumable).
#[test]
fn degrade_policy_survives_every_fault_with_identical_output() {
    let d = dataset();
    let workers = 2;
    let (base, n_ops) = reference(&d.pair, workers, "degrade-ref");
    let mut degraded_runs = 0u64;
    for k in 0..n_ops {
        // ENOSPC exercises the clean-failure path, ShortWrite the torn-
        // file path (half the payload lands, then the error surfaces).
        for &kind in &[FaultKind::Enospc, FaultKind::ShortWrite] {
            let tag = format!("degrade-k{k}-{}", kind.as_str());
            let dir = scratch_dir(&tag);
            let faulty = FaultFs::new(FaultPlan::fail_op(k, kind));
            let (res, trace) = run_ckpt(&d.pair, &dir, workers, faulty, true, false)
                .unwrap_or_else(|e| {
                    panic!("degrade policy must absorb fault at op {k} ({kind:?}), got: {e}")
                });
            assert_eq!(
                canonical(&res),
                base,
                "degraded run (op {k}, {kind:?}) changed the output"
            );
            let degraded = trace.counter("ckpt/degraded");
            // A fault on a best-effort op (staging sweep) is tolerated
            // without degrading; a fault on the commit path must be
            // counted. Either way the run keeps its answer.
            if degraded > 0 {
                degraded_runs += 1;
            } else {
                assert_eq!(
                    trace.counter("ckpt/barriers_written"),
                    3,
                    "op {k} ({kind:?}): no degradation counted but checkpointing was incomplete"
                );
            }
            assert!(tmp_leaks(&dir).is_empty(), "degraded run leaked staging files");
        }
    }
    assert!(
        degraded_runs > 0,
        "the sweep must hit the commit path and count ckpt/degraded at least once"
    );
}

/// A persistent full disk (every op fails from the start) under the
/// degradation policy: the run completes uncheckpointed with the exact
/// reference output.
#[test]
fn persistent_disk_failure_degrades_to_uncheckpointed_run() {
    let d = dataset();
    let workers = 2;
    let (base, _) = reference(&d.pair, workers, "persistent-ref");
    let dir = scratch_dir("persistent");
    let faulty = FaultFs::new(FaultPlan::fail_from(0, FaultKind::Enospc));
    let (res, trace) = run_ckpt(&d.pair, &dir, workers, faulty.clone(), true, false)
        .expect("degrade policy must survive a persistently failing disk");
    assert_eq!(canonical(&res), base, "uncheckpointed degraded run diverged");
    assert!(trace.counter("ckpt/degraded") >= 1, "degradation must be counted");
    assert_eq!(trace.counter("ckpt/barriers_written"), 0, "nothing can have committed");
    assert!(!faulty.fired().is_empty(), "the persistent fault must have fired");
}

/// Spill-path sweep: a memory-budgeted run whose shuffle scratch sits on
/// a faulty disk. Every spill op fault either surfaces as the typed
/// [`DataflowError::DiskFull`] / checkpoint I/O error with the scratch
/// directory swept, or is tolerated with a bit-identical answer.
#[test]
fn spill_fault_at_every_op_is_typed_and_sweeps_scratch() {
    let d = dataset();
    let workers = 2;
    // Reference: an unbudgeted plain run (spilling never changes results).
    let plain = Minoaner::new()
        .run(ResolveRequest::pair(&d.pair).rules(RuleSet::FULL).workers(workers))
        .expect("plain run succeeds")
        .into_resolution();
    let base = canonical(&plain);

    // Probe: count the spill ops a 1-byte budget forces.
    let probe_dir = scratch_dir("spill-probe");
    let probe = FaultFs::new(FaultPlan::none());
    let budget = MemoryBudget::new(1, &probe_dir).with_vfs(probe.clone());
    let res = Minoaner::new()
        .run(
            ResolveRequest::pair(&d.pair)
                .rules(RuleSet::FULL)
                .workers(workers)
                .mem_budget(budget),
        )
        .expect("budgeted probe run succeeds")
        .into_resolution();
    assert_eq!(canonical(&res), base, "spilling changed the output");
    let n_ops = probe.op_count();
    assert!(n_ops >= 4, "a 1-byte budget must force spill I/O, saw {n_ops} ops");
    assert!(
        dir_entries(&probe_dir).is_empty(),
        "the Drop guard must sweep the scratch of a healthy spilling run"
    );

    for k in 0..n_ops {
        for &kind in &[FaultKind::Enospc, FaultKind::Eio] {
            let tag = format!("spill-k{k}-{}", kind.as_str());
            let dir = scratch_dir(&tag);
            let faulty = FaultFs::new(FaultPlan::fail_op(k, kind));
            let budget = MemoryBudget::new(1, &dir).with_vfs(faulty.clone());
            let outcome = Minoaner::new().run(
                ResolveRequest::pair(&d.pair)
                    .rules(RuleSet::FULL)
                    .workers(workers)
                    .mem_budget(budget),
            );
            match outcome {
                Ok(done) => assert_eq!(
                    canonical(&done.into_resolution()),
                    base,
                    "tolerated spill fault at op {k} ({kind:?}) changed the output"
                ),
                Err(e) => {
                    assert!(
                        is_typed_io_failure(&e),
                        "spill fault at op {k} ({kind:?}) surfaced untyped: {e}"
                    );
                    if kind == FaultKind::Enospc {
                        assert!(
                            matches!(e, DataflowError::DiskFull { .. }),
                            "ENOSPC on a spill write must surface as DiskFull, got: {e}"
                        );
                    }
                    // A failed run guarantees scratch cleanup: the Drop
                    // guard runs after the fault, on a healthy disk.
                    let residue = dir_entries(&dir);
                    assert!(
                        residue.is_empty(),
                        "spill fault at op {k} ({kind:?}) leaked scratch: {residue:?}"
                    );
                }
            }
            // Error or tolerated, no half-committed staging files ever
            // remain (a fault on the cleanup op itself may leave whole
            // committed run files behind — that is the OS's lie, not a
            // torn artifact — but never a `.tmp-` one).
            let leaks = tmp_leaks(&dir);
            assert!(
                leaks.is_empty(),
                "spill fault at op {k} ({kind:?}) leaked staging files: {leaks:?}"
            );
        }
    }
}

/// Bounded seeded sweep: the same seed always produces the same fault
/// plan, so a CI failure is reproducible from the seed alone. Every
/// seeded run obeys the same typed-or-identical contract.
#[test]
fn seeded_fault_plans_are_reproducible_and_contained() {
    let d = dataset();
    let workers = 2;
    let (base, n_ops) = reference(&d.pair, workers, "seeded-ref");
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed, n_ops);
        let tag = format!("seeded-{seed}");
        let dir = scratch_dir(&tag);
        let faulty = FaultFs::new(plan);
        let outcome = run_ckpt(&d.pair, &dir, workers, faulty.clone(), false, false);
        match outcome {
            Ok((res, _)) => assert_eq!(canonical(&res), base, "seed {seed} changed the output"),
            Err(e) => {
                assert!(is_typed_io_failure(&e), "seed {seed} surfaced untyped: {e}")
            }
        }
        assert!(tmp_leaks(&dir).is_empty(), "seed {seed} leaked staging files");
        // Reproducibility: the same seed fires the same fault at the
        // same op index.
        let rerun_dir = scratch_dir(&format!("seeded-{seed}-rerun"));
        let again = FaultFs::new(FaultPlan::seeded(seed, n_ops));
        let _ = run_ckpt(&d.pair, &rerun_dir, workers, again.clone(), false, false);
        let (a, b) = (faulty.fired(), again.fired());
        assert_eq!(
            a.iter().map(|r| (r.index, r.fault)).collect::<Vec<_>>(),
            b.iter().map(|r| (r.index, r.fault)).collect::<Vec<_>>(),
            "seed {seed} is not reproducible"
        );
    }
}

/// Produces the CI artifact: the probe run's full op trace plus one
/// faulted run's witness under `target/chaos-vfs/` for upload.
#[test]
fn witness_artifact_is_written() {
    let d = dataset();
    let workers = 2;
    let dir = scratch_dir("witness-probe");
    let probe = FaultFs::new(FaultPlan::none());
    run_ckpt(&d.pair, &dir, workers, probe.clone(), false, false)
        .expect("fault-free probe run succeeds");

    let fault_dir = scratch_dir("witness-fault");
    let faulty = FaultFs::new(FaultPlan::seeded(7, probe.op_count()));
    let outcome = run_ckpt(&d.pair, &fault_dir, workers, faulty.clone(), true, false);
    assert!(outcome.is_ok(), "degrade policy must absorb the seeded fault");

    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let out = PathBuf::from(target).join("chaos-vfs");
    std::fs::create_dir_all(&out).expect("create artifact dir");
    std::fs::write(out.join("probe-ops.txt"), probe.witness()).expect("write probe witness");
    std::fs::write(out.join("faulted-run.txt"), faulty.witness()).expect("write fault witness");
    let summary = format!(
        "probe ops: {}\nfaulted ops: {}\nfaults fired: {}\n",
        probe.op_count(),
        faulty.op_count(),
        faulty.fired().len()
    );
    std::fs::write(out.join("summary.txt"), summary).expect("write summary");
}
