//! Functional-enough criterion stand-in: every bench closure runs exactly
//! once (no statistics), which lets the self-validating bench binaries
//! execute offline. Timing numbers are meaningless under the stub.

use std::time::Duration;

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher { _private: () });
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: impl ToString, mut f: F) -> &mut Self {
        f(&mut Bencher { _private: () });
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _private: () }, input);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        black_box(f(setup()));
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(_name: impl ToString, _param: impl ToString) -> Self {
        Self
    }

    pub fn from_parameter(_param: impl ToString) -> Self {
        Self
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
