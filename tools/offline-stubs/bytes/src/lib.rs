//! Empty placeholder: the workspace declares `bytes` in
//! `[workspace.dependencies]` but no member currently uses it.
