//! Functional stand-in for the `rand 0.8` subset this workspace uses.
//! Deterministic splitmix64/xorshift generator — NOT the real StdRng
//! stream, so generated values differ from a networked build; everything
//! the workspace derives from them stays structurally valid.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Conversion of raw generator output into a sampled value (the stub's
/// analogue of `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    fn from_raw(raw: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_raw(raw: u64) -> Self {
        // 53 random mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl StandardSample for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl StandardSample for bool {
    fn from_raw(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (stub analogue of `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as StandardSample>::from_raw(rng.next_u64());
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so that small seeds do not yield tiny states.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            Self { state: (z ^ (z >> 31)).max(1) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
