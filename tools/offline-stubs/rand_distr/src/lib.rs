//! Functional stand-in for the `rand_distr 0.4` subset this workspace
//! uses: `Distribution`, `Poisson<f64>` and `Zipf<f64>`.

use rand::{Rng, RngCore};

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonError;

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("lambda must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// Poisson via Knuth's product-of-uniforms method (fine for the small
/// means the data generator uses).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Self { lambda })
        } else {
            Err(PoissonError)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let threshold = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= threshold {
                return k as f64;
            }
            k += 1;
            if k > 10_000 {
                return self.lambda; // numeric safety valve for huge lambda
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("n must be > 0 and s must be >= 0")
    }
}

impl std::error::Error for ZipfError {}

/// Zipf over `1..=n` with exponent `s`, sampled by inverse CDF over the
/// precomputed normalizer (n is small in every profile).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(ZipfError);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen::<f64>();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) | Err(i) => (i.min(self.cdf.len() - 1) + 1) as f64,
        }
    }
}
