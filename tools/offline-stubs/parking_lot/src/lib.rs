//! Functional stand-in for the `parking_lot` subset this workspace uses,
//! backed by `std::sync::Mutex`. Poisoning is translated to a panic, which
//! matches parking_lot's no-poisoning behavior closely enough for tests.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// parking_lot-shaped `Condvar`: waits on the stub `MutexGuard` in place
/// (no `(guard) -> guard` round-trip like `std::sync::Condvar`).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(&mut guard.0, |inner| {
            self.0.wait(inner).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces a `std::sync::MutexGuard` through a by-value transform, as
/// `Condvar::wait` requires. The closure must not panic (ours re-enters
/// `wait`, which only unwinds on poisoning we already translate away), so
/// the abort-on-unwind guard here is unreachable in practice.
fn take_mut_guard<'a, T: ?Sized>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten before being overwritten, and `f`
    // cannot unwind between the read and the write-back (see above); on
    // the impossible unwind we abort rather than double-drop.
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Abort;
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
        std::mem::forget(bomb);
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
