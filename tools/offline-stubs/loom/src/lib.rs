//! Offline stand-in for the `loom` model checker, used only by
//! `tools/offline-check.sh`. Real loom explores every interleaving of the
//! closure passed to [`model`]; this stub runs it exactly once on real
//! threads, which is enough to typecheck `#[cfg(loom)]` test files and to
//! smoke-run them as plain concurrency tests. It makes no exhaustiveness
//! claims — CI runs the genuine crates-io loom.

/// Runs the model body once (real loom runs it under every interleaving).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}

/// Mirrors `loom::sync`: the subset the workspace models use, backed by
/// `std::sync`. Loom's types share std's shapes (`lock()` returns a
/// `LockResult`, atomics take `Ordering`), so re-exports suffice.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }
}

/// Mirrors `loom::thread` with std threads.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_the_body() {
        let hit = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h2 = std::sync::Arc::clone(&hit);
        super::model(move || {
            h2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(hit.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
