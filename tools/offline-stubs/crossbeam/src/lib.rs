//! Functional stand-in for `crossbeam::scope`, backed by std scoped
//! threads (Rust ≥ 1.63). Child panics abort the scope by unwinding the
//! parent instead of being collected into the `Err` variant; the workspace
//! panic-isolates its tasks, so the difference never materializes.

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle));
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    pub use super::{scope, Scope};
}
