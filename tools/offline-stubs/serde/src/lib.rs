//! Typecheck-only serde stand-in. The traits are blanket-implemented for
//! every type, so `#[derive(Serialize, Deserialize)]` (whose stub derive
//! emits nothing) and generic bounds all typecheck. Serialization is not
//! functional: `serde_json`'s stub returns placeholders/errors at runtime.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
