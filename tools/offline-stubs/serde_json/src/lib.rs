//! Typecheck-only serde_json stand-in. `to_string*` returns a placeholder
//! string, `from_str` always errors, and `json!` swallows its tokens into
//! `Value::Null` — enough shape for the workspace to compile; round-trip
//! tests will fail at runtime under the stub (expected; run them in a
//! networked build).

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|f| f as i64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: (de)serialization is not functional offline")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::from("{}"))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok(String::from("{}"))
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error)
}

#[macro_export]
macro_rules! json {
    ($($tokens:tt)*) => {
        $crate::Value::Null
    };
}

pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>, Error> {
    Ok(b"{}".to_vec())
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T, Error> {
    Err(Error)
}
