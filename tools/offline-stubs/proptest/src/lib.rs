//! Typecheck-only proptest stand-in.
//!
//! `proptest! { ... }` swallows its body entirely — property bodies are
//! neither typechecked nor run under the stub (run them in a networked
//! build). Strategy helper *functions* outside the macro are real code,
//! so the `Strategy` trait, the common combinators, and the collection /
//! sample constructors exist structurally with the right value types.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map(self, f)
    }

    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F> {
        FlatMap(self, f)
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter(self, f)
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(PhantomData)
    }
}

pub struct Map<S, F>(S, F);

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
}

pub struct FlatMap<S, F>(S, F);

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
}

pub struct Filter<S, F>(S, F);

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

pub struct BoxedStrategy<T>(PhantomData<T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T> Strategy for Any<T> {
    type Value = T;
}

impl<T: Clone> Strategy for Range<T> {
    type Value = T;
}

impl<T: Clone> Strategy for RangeInclusive<T> {
    type Value = T;
}

/// Regex string strategies: `"[a-z]{1,8}"` produces `String`s.
impl Strategy for &'static str {
    type Value = String;
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::Strategy;
    use std::ops::{Range, RangeInclusive};

    pub struct SizeRange;

    impl From<usize> for SizeRange {
        fn from(_: usize) -> Self {
            SizeRange
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(_: Range<usize>) -> Self {
            SizeRange
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(_: RangeInclusive<usize>) -> Self {
            SizeRange
        }
    }

    pub struct VecStrategy<S>(S);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy>(element: S, _size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy(element)
    }
}

pub mod sample {
    use super::Strategy;

    pub struct Select<T>(#[allow(dead_code)] Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
    }

    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select(values)
    }
}

#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    ($($body:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($($body:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($body:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($body:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assume {
    ($($body:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($body:tt)*) => {
        $crate::any::<()>()
    };
}

pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, sample, Just, ProptestConfig, Strategy,
    };

    /// `prop::collection::vec(...)` style paths.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}
