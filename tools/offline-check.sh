#!/usr/bin/env bash
# Offline typecheck harness.
#
# The build container has no network access to the crates.io mirror, so the
# real external dependencies (rand, proptest, serde, ...) cannot be fetched.
# This script copies the workspace into a scratch directory, rewrites the
# root manifest's [workspace.dependencies] to point at the functional stubs
# in tools/offline-stubs/, and runs `cargo check` there. It never modifies
# the real repo.
#
# Usage: tools/offline-check.sh [extra cargo-check args...]
#        (default extra args: --workspace --all-targets)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SCRATCH="${OFFLINE_CHECK_DIR:-/tmp/minoaner-offline-check}"

# tar-based copy: rsync is not available in the minimal container.
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
(cd "$REPO_ROOT" && tar cf - --exclude=./.git --exclude=./target --exclude=./tools/offline-stubs .) |
    tar xf - -C "$SCRATCH"
mkdir -p "$SCRATCH/tools"
cp -r "$REPO_ROOT/tools/offline-stubs" "$SCRATCH/tools/offline-stubs"

# Point every external dep at its stub. Only lines inside
# [workspace.dependencies] that reference a known stub are rewritten;
# the path deps on crates/* are left alone.
python3 - "$SCRATCH/Cargo.toml" <<'EOF'
import re, sys

path = sys.argv[1]
stubs = [
    "rand", "rand_distr", "proptest", "criterion", "crossbeam",
    "parking_lot", "bytes", "serde", "serde_json", "loom",
]
out = []
in_wsdeps = False
for line in open(path):
    stripped = line.strip()
    if stripped.startswith("["):
        in_wsdeps = stripped == "[workspace.dependencies]"
    if in_wsdeps:
        m = re.match(r"^([A-Za-z0-9_-]+)\s*=", stripped)
        if m and m.group(1) in stubs:
            name = m.group(1)
            features = ""
            if name == "serde" and "derive" in line:
                features = ', features = ["derive"]'
            line = f'{name} = {{ path = "tools/offline-stubs/{name}"{features} }}\n'
    out.append(line)
open(path, "w").writelines(out)
EOF

# serde's derive feature pulls in the proc-macro stub.
cd "$SCRATCH"
export CARGO_NET_OFFLINE=true
ARGS=("$@")
if [ ${#ARGS[@]} -eq 0 ]; then
    ARGS=(--workspace --all-targets)
fi
exec cargo check "${ARGS[@]}"
