//! # MinoanER-rs
//!
//! A from-scratch Rust reproduction of **MinoanER** — *Schema-Agnostic,
//! Non-Iterative, Massively Parallel Resolution of Web Entities*
//! (Efthymiou, Papadakis, Stefanidis, Christophides — EDBT 2019).
//!
//! MinoanER resolves entity descriptions across two heterogeneous
//! knowledge bases with no schema alignment, no training data and no
//! iterative convergence: token-level value similarity and statistically
//! derived names/relations feed a composite blocking scheme, abstracted as
//! a *disjunctive blocking graph*, which four generic matching rules
//! (R1–R4) traverse exactly once.
//!
//! This workspace implements the paper's full stack:
//!
//! * [`kb`] — the entity model, N-Triples parsing and all schema-agnostic
//!   statistics (§2);
//! * [`dataflow`] — a hand-rolled parallel dataflow engine standing in for
//!   Spark (§4.1);
//! * [`jobs`] — multi-job orchestration: priority admission, resource
//!   budgets, cooperative cancellation, per-job checkpoints;
//! * [`blocking`] — token/name blocking, Block Purging, and the pruned
//!   disjunctive blocking graph (§3, Algorithm 1);
//! * [`core`] — the non-iterative matcher and end-to-end pipeline
//!   (§4, Algorithm 2), entry point [`Minoaner`];
//! * [`baselines`] — BSL, PARIS, SiGMa- and RiMOM-style systems (§6);
//! * [`datagen`] — synthetic analogues of the four benchmark datasets;
//! * [`eval`] — the harness regenerating every table and figure of §6.
//!
//! ## Quickstart
//!
//! ```
//! use minoaner::{KbPairBuilder, Minoaner, ResolveRequest, Side, Term};
//!
//! let mut b = KbPairBuilder::new();
//! b.add_triple(Side::Left, "w:R1", "w:label", Term::Literal("The Fat Duck"));
//! b.add_triple(Side::Left, "w:R1", "w:hasChef", Term::Uri("w:C1"));
//! b.add_triple(Side::Left, "w:C1", "w:label", Term::Literal("Jonny Lake"));
//! b.add_triple(Side::Right, "d:R2", "d:name", Term::Literal("Fat Duck (Bray)"));
//! b.add_triple(Side::Right, "d:R2", "d:headChef", Term::Uri("d:C2"));
//! b.add_triple(Side::Right, "d:C2", "d:name", Term::Literal("Jonny Lake"));
//! let pair = b.finish();
//!
//! let resolution = Minoaner::new()
//!     .run(ResolveRequest::pair(&pair).workers(4))
//!     .expect("healthy run succeeds")
//!     .into_resolution();
//! assert_eq!(resolution.matches.len(), 2); // both the restaurants and the chefs
//! ```

pub use minoaner_baselines as baselines;
pub use minoaner_blocking as blocking;
pub use minoaner_core as core;
pub use minoaner_dataflow as dataflow;
pub use minoaner_datagen as datagen;
pub use minoaner_det as det;
pub use minoaner_eval as eval;
pub use minoaner_jobs as jobs;
pub use minoaner_kb as kb;

pub use minoaner_det::{DetHashMap, DetHashSet};

pub use minoaner_core::{
    CheckpointSpec, MatchOutcome, Minoaner, MinoanerConfig, Resolution, ResolveInput,
    ResolveOutcome, ResolveRequest, Rule, RuleSet,
};
pub use minoaner_dataflow::{DataflowError, Executor, ExecutorConfig, FailureAction, FaultPolicy};
pub use minoaner_eval::Quality;
pub use minoaner_kb::{EntityId, KbPair, KbPairBuilder, Side, Term};
