//! Advanced API tour: parse N-Triples input, tune the four MinoanER
//! parameters, split the pipeline into its prepare/match halves, inspect
//! the blocking graph, and read per-stage timings.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use minoaner::kb::parser::load_ntriples;
use minoaner::{Executor, KbPairBuilder, Minoaner, MinoanerConfig, ResolveRequest, RuleSet, Side};

const LEFT_NT: &str = r#"
<http://w/FatDuck>   <http://w/label>   "The Fat Duck" .
<http://w/FatDuck>   <http://w/chef>    <http://w/Blumenthal> .
<http://w/FatDuck>   <http://w/desc>    "molecular gastronomy bray berkshire michelin" .
<http://w/Blumenthal> <http://w/label>  "Heston Blumenthal" .
<http://w/Noma>      <http://w/label>   "Noma" .
<http://w/Noma>      <http://w/chef>    <http://w/Redzepi> .
<http://w/Noma>      <http://w/desc>    "nordic foraging copenhagen tasting menu" .
<http://w/Redzepi>   <http://w/label>   "Rene Redzepi" .
"#;

const RIGHT_NT: &str = r#"
<http://d/fat_duck>  <http://d/name>     "Fat Duck (Bray)"@en .
<http://d/fat_duck>  <http://d/headChef> <http://d/heston> .
<http://d/fat_duck>  <http://d/abstract> "michelin starred molecular gastronomy in bray" .
<http://d/heston>    <http://d/name>     "Heston Blumenthal" .
<http://d/noma>      <http://d/name>     "Noma Copenhagen" .
<http://d/noma>      <http://d/headChef> <http://d/rene> .
<http://d/noma>      <http://d/abstract> "nordic cuisine foraging tasting menu" .
<http://d/rene>      <http://d/name>     "Rene Redzepi" .
"#;

fn main() {
    // 1. Load both KBs from N-Triples.
    let mut b = KbPairBuilder::new();
    let n_left = load_ntriples(&mut b, Side::Left, LEFT_NT).expect("valid left KB");
    let n_right = load_ntriples(&mut b, Side::Right, RIGHT_NT).expect("valid right KB");
    let pair = b.finish();
    println!("Loaded {n_left} + {n_right} triples.");

    // 2. A custom configuration: one name attribute, tighter candidate
    //    lists, θ favoring neighbor evidence. The builder validates, so a
    //    bad parameter is caught here instead of inside the pipeline.
    let config = MinoanerConfig::builder()
        .name_attrs_k(1)
        .top_k(5)
        .n_relations(2)
        .theta(0.5)
        .build()
        .expect("parameters in range");
    let resolver = Minoaner::with_config(config);
    let mut exec = Executor::new(2);

    // 3. Run Algorithm 1 (blocking + graph) separately from Algorithm 2.
    let prepared = resolver.prepare(&exec, &pair);
    println!(
        "Blocking graph: {} directed edges, {} alpha pairs, {} token blocks ({} purged).",
        prepared.graph.num_directed_edges(),
        prepared.graph.alpha_pairs().len(),
        prepared.token_blocks.len(),
        prepared.purge.as_ref().map_or(0, |p| p.blocks_before - p.blocks_after),
    );
    for side in [Side::Left, Side::Right] {
        for attr in prepared.name_stats.name_attrs(side) {
            println!(
                "  name attribute on {side:?}: {}",
                pair.attrs().resolve(minoaner::kb::Symbol(attr.0))
            );
        }
    }

    // 4. Match with the full rule set, then inspect an ablation on the
    //    same prepared graph (no re-blocking).
    let outcome = resolver.match_prepared(&exec, &pair, &prepared, RuleSet::FULL);
    println!("\nMatches:");
    for (&(l, r), rule) in outcome.matches.iter().zip(&outcome.rules) {
        println!(
            "  [{rule:?}] {}  <=>  {}",
            pair.uri_of(Side::Left, l),
            pair.uri_of(Side::Right, r)
        );
    }
    let names_only = resolver.match_prepared(&exec, &pair, &prepared, RuleSet::R1_ONLY);
    println!("\nR1 alone finds {} of them.", names_only.matches.len());

    // 5. Stage timings and item flow recorded by the dataflow executor.
    println!("\nStages:");
    for stage in exec.stage_log().iter() {
        println!(
            "  {:<28} {:>8.3} ms  ({} tasks, {} → {} items)",
            stage.name,
            stage.wall.as_secs_f64() * 1e3,
            stage.tasks,
            stage.io.items_in,
            stage.io.items_out,
        );
    }

    // 6. The same run end-to-end with a RunTrace: domain counters from
    //    blocking and matching plus the annotated stage log, exportable
    //    as versioned JSON (`minoaner resolve --report run.json` does the
    //    same from the CLI).
    let (_, trace) = resolver
        .run_on(&mut exec, ResolveRequest::pair(&pair).rules(RuleSet::FULL).trace())
        .expect("pipeline runs")
        .into_traced();
    println!("\nCounters:");
    for (name, value) in &trace.counters {
        println!("  {name:<36} {value}");
    }
}
