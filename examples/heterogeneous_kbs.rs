//! The high-Variety scenario that motivates the paper: two KBs describing
//! musicians with wildly different schemas (15 vs ~300 attributes), 4×
//! verbosity asymmetry, and a decoy identifier attribute — the
//! BBCmusic-DBpedia regime where schema-based tools and value-only
//! baselines break down.
//!
//! ```sh
//! cargo run --release --example heterogeneous_kbs
//! ```
//!
//! The example resolves the generated pair with MinoanER and with the
//! value-only BSL baseline (grid-searched to its best configuration, as
//! the paper does) and prints both, reproducing the paper's headline: on
//! high-Variety KBs, MinoanER wins by a wide margin.

use minoaner::datagen::{generate, profiles};
use minoaner::eval::{run_system, Quality, SystemId};
use minoaner::{Executor, Minoaner, ResolveRequest, Side};

fn main() {
    // A smaller cut of the BBCmusic-DBpedia analogue for a fast demo.
    let profile = profiles::bbc_dbpedia().scaled(0.5);
    let dataset = generate(&profile);
    let pair = &dataset.pair;

    let left = minoaner::kb::dataset_stats::kb_stats(pair, Side::Left, &profile.type_attr(Side::Left));
    let right = minoaner::kb::dataset_stats::kb_stats(pair, Side::Right, &profile.type_attr(Side::Right));
    println!("KB variety:");
    println!("  E1: {} entities, {} attributes, {:.1} tokens/entity", left.entities, left.attributes, left.avg_tokens);
    println!("  E2: {} entities, {} attributes, {:.1} tokens/entity", right.entities, right.attributes, right.avg_tokens);
    println!("  (no attribute is shared between the KBs — fully schema-agnostic resolution)\n");

    let exec = Executor::default();

    let res = Minoaner::new()
        .run(ResolveRequest::pair(pair))
        .expect("healthy run succeeds")
        .into_resolution();
    let q = Quality::evaluate(&res.matches, &dataset.ground_truth);
    println!("MinoanER: {q}");
    let c = res.rule_counts;
    println!("  rules: R1={} R2={} R3={} (−{} by R4)", c.r1, c.r2, c.r3, c.removed_by_r4);

    let bsl = run_system(&exec, &dataset, SystemId::Bsl);
    println!("BSL (best of 420 configurations): {}", bsl.quality);
    println!("  {}", bsl.detail);

    println!(
        "\nMinoanER leads by {:.1} F1 points on this high-Variety pair — neighbor and name \
         evidence recover the matches whose values alone are inconclusive.",
        q.f1 - bsl.quality.f1
    );
}
