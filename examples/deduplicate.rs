//! Dirty ER: finding duplicates *within* one knowledge base — the
//! single-KB generalization the paper sketches in §2.
//!
//! ```sh
//! cargo run --release --example deduplicate
//! ```

use minoaner::core::clusters::cluster_matches;
use minoaner::kb::dirty::DirtyKbBuilder;
use minoaner::{Minoaner, ResolveRequest, Side, Term};

fn main() {
    // One crawled KB with several descriptions of the same restaurants
    // under different URIs and schemas.
    let mut b = DirtyKbBuilder::new();
    let triples: &[(&str, &str, &str)] = &[
        // Three descriptions of the Fat Duck.
        ("db:fat_duck", "name", "The Fat Duck"),
        ("db:fat_duck", "desc", "michelin molecular gastronomy bray berkshire"),
        ("crawl:fatduck", "label", "Fat Duck, The"),
        ("crawl:fatduck", "about", "bray berkshire michelin tasting menu"),
        ("feed:fd-2019", "label", "the fat duck"),
        ("feed:fd-2019", "body", "molecular tasting menu bray heston michelin"),
        // Two of Noma.
        ("db:noma", "name", "Noma"),
        ("db:noma", "summary", "copenhagen nordic foraging redzepi"),
        ("crawl:noma", "label", "Noma"),
        ("crawl:noma", "about", "nordic foraging copenhagen denmark"),
        // A singleton.
        ("db:elbulli", "name", "El Bulli"),
        ("db:elbulli", "blurb", "roses catalonia avantgarde adria"),
    ];
    for (s, p, o) in triples {
        b.add_triple(s, p, Term::Literal(o));
    }
    let pair = b.finish();

    let res = Minoaner::new()
        .run(ResolveRequest::pair(&pair).dirty().workers(2))
        .expect("healthy run succeeds")
        .into_dirty();

    println!("Duplicate pairs:");
    for &(a, z) in &res.duplicates {
        println!("  {}  ==  {}", pair.uri_of(Side::Left, a), pair.uri_of(Side::Left, z));
    }

    // Chains of pairs form clusters (all descriptions of one real entity).
    let clusters = cluster_matches(&res.duplicates);
    println!("\nEntity clusters:");
    for cluster in &clusters {
        let uris: Vec<&str> = cluster.iter().map(|&e| pair.uri_of(Side::Left, e)).collect();
        println!("  {{ {} }}", uris.join(", "));
    }
    println!(
        "\n{} descriptions → {} duplicate pairs → {} clusters (singletons stay out).",
        pair.kb(Side::Left).len(),
        res.duplicates.len(),
        clusters.len()
    );
}
