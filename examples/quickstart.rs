//! Quickstart: resolve two tiny, schema-incompatible KBs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The two KBs below describe the same restaurants with completely
//! different attribute names (no schema alignment is ever provided), and
//! one pair is only resolvable through its *neighbors* — exactly the
//! scenario in Figure 1 of the paper.

use minoaner::{KbPairBuilder, Minoaner, ResolveRequest, Side, Term};

fn main() {
    let mut b = KbPairBuilder::new();

    // KB 1 — Wikidata-style.
    b.add_triple(Side::Left, "w:Restaurant1", "w:label", Term::Literal("Fat Duck"));
    b.add_triple(Side::Left, "w:Restaurant1", "w:hasChef", Term::Uri("w:JohnLakeA"));
    b.add_triple(Side::Left, "w:Restaurant1", "w:territorial", Term::Uri("w:Bray"));
    b.add_triple(Side::Left, "w:JohnLakeA", "w:label", Term::Literal("J. Lake"));
    b.add_triple(Side::Left, "w:JohnLakeA", "w:alias", Term::Literal("John Lake A chef"));
    b.add_triple(Side::Left, "w:Bray", "w:label", Term::Literal("Bray Berkshire village"));

    // KB 2 — DBpedia-style: different attributes, different verbosity.
    b.add_triple(Side::Right, "d:Restaurant2", "d:name", Term::Literal("The Fat Duck"));
    b.add_triple(Side::Right, "d:Restaurant2", "d:headChef", Term::Uri("d:JonnyLake"));
    b.add_triple(Side::Right, "d:Restaurant2", "d:county", Term::Uri("d:Berkshire"));
    b.add_triple(Side::Right, "d:JonnyLake", "d:name", Term::Literal("J. Lake"));
    b.add_triple(Side::Right, "d:JonnyLake", "d:bio", Term::Literal("Jonny Lake chef"));
    b.add_triple(Side::Right, "d:Berkshire", "d:name", Term::Literal("Berkshire county Bray"));

    let pair = b.finish();
    let resolution = Minoaner::new()
        .run(ResolveRequest::pair(&pair).workers(4))
        .expect("healthy run succeeds")
        .into_resolution();

    println!("Resolved {} matches:", resolution.matches.len());
    for &(l, r) in &resolution.matches {
        println!("  {}  <=>  {}", pair.uri_of(Side::Left, l), pair.uri_of(Side::Right, r));
    }
    let c = resolution.rule_counts;
    println!(
        "\nRule contributions: R1 (names) = {}, R2 (values) = {}, R3 (rank aggregation) = {}; \
         R4 removed {} non-reciprocal pairs.",
        c.r1, c.r2, c.r3, c.removed_by_r4
    );
    println!(
        "Total {:.1} ms, matching phase {:.1}% of it.",
        resolution.timings.total.as_secs_f64() * 1000.0,
        resolution.timings.matching_share()
    );
}
