//! Movie-domain linkage in the YAGO-IMDb regime: short, low-value-overlap
//! descriptions where *neighbor evidence* (shared cast/director structure)
//! is what makes resolution possible.
//!
//! ```sh
//! cargo run --release --example movie_linkage
//! ```
//!
//! The example compares the full MinoanER workflow with the
//! neighbor-blind ablation (Algorithm 2 without rule R3) and prints the
//! Figure-2-style regime breakdown of the ground truth.

use minoaner::datagen::{generate, profiles};
use minoaner::eval::figures::{fig2_points, render_fig2};
use minoaner::eval::Quality;
use minoaner::{Minoaner, ResolveRequest, RuleSet};

fn main() {
    let profile = profiles::yago_imdb().scaled(0.25);
    let dataset = generate(&profile);

    // Where do the matches live on the value/neighbor similarity plane?
    let points = fig2_points(&dataset, 3);
    println!("{}", render_fig2(&points, "Ground-truth similarity regimes (cf. Figure 2)"));

    let m = Minoaner::new();
    let full = m
        .run(ResolveRequest::pair(&dataset.pair))
        .expect("healthy run succeeds")
        .into_resolution();
    let q_full = Quality::evaluate(&full.matches, &dataset.ground_truth);

    let blind = m
        .run(ResolveRequest::pair(&dataset.pair).rules(RuleSet::NO_NEIGHBORS))
        .expect("healthy run succeeds")
        .into_resolution();
    let q_blind = Quality::evaluate(&blind.matches, &dataset.ground_truth);

    println!("Full MinoanER (R1+R2+R3+R4): {q_full}");
    println!("Without neighbor evidence  : {q_blind}");
    println!(
        "\nNeighbor evidence recovers {:.1} recall points here — the paper's finding that it \
         \"has a big impact in KBs with nearly similar entities\" (§6.1).",
        q_full.recall - q_blind.recall
    );
}
